package engine

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Add("a", &Solution{RankRegret: 1})
	c.Add("b", &Solution{RankRegret: 2})
	if _, ok := c.Get("a"); !ok { // promote a; b is now LRU
		t.Fatal("a missing")
	}
	c.Add("c", &Solution{RankRegret: 3}) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := c.Get(key); !ok {
			t.Errorf("%s should be resident", key)
		}
	}
	st := c.Stats()
	if st.Len != 2 || st.Cap != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheRefresh(t *testing.T) {
	c := NewCache(2)
	c.Add("a", &Solution{RankRegret: 1})
	c.Add("a", &Solution{RankRegret: 9})
	got, ok := c.Get("a")
	if !ok || got.RankRegret != 9 {
		t.Errorf("refreshed value = %+v, ok=%v", got, ok)
	}
	if st := c.Stats(); st.Len != 1 {
		t.Errorf("duplicate Add grew the cache: %+v", st)
	}
}

// TestCacheConcurrentHammer drives one engine from many goroutines mixing
// cache hits, misses, evictions, and result mutation. Run under -race this
// is the engine's concurrency gate.
func TestCacheConcurrentHammer(t *testing.T) {
	island := dataset.SimIsland(xrand.New(3), 150)
	want := make(map[int][]int)
	probe := New(-1) // uncached engine computes the expected answers
	for r := 2; r <= 5; r++ {
		sol, err := probe.Solve(context.Background(), island, r, "", Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		want[r] = sol.IDs
	}

	e := New(4) // small capacity so eviction churns under load
	const workers = 32
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r := 2 + (w+i)%4
				sol, err := e.Solve(context.Background(), island, r, "", Options{Seed: 1})
				if err != nil {
					errs <- err
					continue
				}
				if !reflect.DeepEqual(sol.IDs, want[r]) {
					errs <- fmt.Errorf("r=%d: ids %v, want %v", r, sol.IDs, want[r])
				}
				// Mutate the returned copy to catch aliasing with the cache.
				for j := range sol.IDs {
					sol.IDs[j] = -j
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := e.CacheStats()
	// Coalesced followers skip the cache lookup entirely, so hits+misses is
	// at most one probe per request.
	if total := st.Hits + st.Misses; total > workers*iters || total == 0 {
		t.Errorf("hits+misses = %d, want in (0, %d]", total, workers*iters)
	}
	if st.Hits == 0 {
		t.Error("expected at least one cache hit under the hammer")
	}
}

// TestSingleflight: concurrent identical cold requests must compute once;
// everyone shares the leader's result.
func TestSingleflight(t *testing.T) {
	island := dataset.SimIsland(xrand.New(3), 200)
	e := New(8)
	var computes atomic.Int64
	compute := func() (*Solution, error) {
		computes.Add(1)
		time.Sleep(50 * time.Millisecond) // hold the flight open for followers
		return &Solution{IDs: []int{1, 2, 3}, Algorithm: "fake"}, nil
	}
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sol, err := e.cached(context.Background(), island, "rrm", 3, "fake", Options{Seed: 1}, compute)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(sol.IDs, []int{1, 2, 3}) {
				errs <- fmt.Errorf("ids = %v", sol.IDs)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Allow a small number of stragglers that raced past the flight window,
	// but the dogpile (16 computes) must be gone.
	if n := computes.Load(); n > 3 {
		t.Errorf("compute ran %d times, want coalesced to ~1", n)
	}
}

// TestSingleflightFollowerDeadline: a follower must stop waiting when its
// own context expires, even while the leader keeps computing.
func TestSingleflightFollowerDeadline(t *testing.T) {
	island := dataset.SimIsland(xrand.New(3), 200)
	e := New(8)
	leaderStarted := make(chan struct{})
	release := make(chan struct{})
	go func() {
		e.cached(context.Background(), island, "rrm", 3, "slow", Options{Seed: 1}, func() (*Solution, error) {
			close(leaderStarted)
			<-release
			return &Solution{IDs: []int{1}}, nil
		})
	}()
	<-leaderStarted
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.cached(ctx, island, "rrm", 3, "slow", Options{Seed: 1}, func() (*Solution, error) {
		t.Error("follower must not compute while the flight is open")
		return nil, nil
	})
	if err != context.DeadlineExceeded {
		t.Errorf("follower err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("follower waited %v past its deadline", elapsed)
	}
	close(release)
}

// TestSingleflightLeaderPanic: a panicking leader must unregister the
// flight so later identical requests are not wedged waiting forever.
func TestSingleflightLeaderPanic(t *testing.T) {
	island := dataset.SimIsland(xrand.New(3), 200)
	e := New(8)
	func() {
		defer func() { recover() }()
		e.cached(context.Background(), island, "rrm", 3, "panicky", Options{Seed: 1}, func() (*Solution, error) {
			panic("solver blew up")
		})
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		sol, err := e.cached(context.Background(), island, "rrm", 3, "panicky", Options{Seed: 1}, func() (*Solution, error) {
			return &Solution{IDs: []int{7}}, nil
		})
		if err != nil || len(sol.IDs) != 1 || sol.IDs[0] != 7 {
			t.Errorf("post-panic solve = %v, %v", sol, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("request after a panicked leader is wedged")
	}
}
