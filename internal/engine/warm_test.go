package engine

import (
	"context"
	"reflect"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

// TestWarmPrimesVecSetTier is the warm-start contract: after Warm, the
// first real solve on the dataset must not build a vector set — it reuses
// (or cheaply extends) the warmed one — and its answer is byte-identical to
// a cold engine's.
func TestWarmPrimesVecSetTier(t *testing.T) {
	ds := dataset.SimNBA(xrand.New(1), 400)
	opts := Options{CacheSalt: "nba", Seed: 1, MaxSamples: 600}

	cold := New(0)
	want, err := cold.Solve(context.Background(), ds, 7, "", opts)
	if err != nil {
		t.Fatal(err)
	}

	e := New(0)
	if err := e.Warm(context.Background(), ds, 0, opts); err != nil {
		t.Fatal(err)
	}
	st := e.VecSetStats()
	if st.Builds != 1 {
		t.Fatalf("warm built %d vector sets, want 1 (stats %+v)", st.Builds, st)
	}
	// r=7 differs from the warm budget, so this misses the solution cache
	// and exercises the VecSet tier directly.
	got, err := e.Solve(context.Background(), ds, 7, "", opts)
	if err != nil {
		t.Fatal(err)
	}
	st = e.VecSetStats()
	if st.Builds != 1 {
		t.Fatalf("post-warm solve cold-built a vector set (stats %+v)", st)
	}
	if st.Reuses+st.Extensions == 0 {
		t.Fatalf("post-warm solve did not touch the warmed entry (stats %+v)", st)
	}
	if !reflect.DeepEqual(got.IDs, want.IDs) || got.RankRegret != want.RankRegret {
		t.Fatalf("warmed solve %+v != cold solve %+v", got, want)
	}
}

// TestWarmBudgetClamp checks tiny datasets warm with r = n instead of
// failing validation.
func TestWarmBudgetClamp(t *testing.T) {
	ds := dataset.MustFromRows([][]float64{{0.2, 0.9, 0.5}, {0.8, 0.1, 0.4}})
	e := New(0)
	if err := e.Warm(context.Background(), ds, 0, Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestWarmHonorsContext checks a cancelled warm aborts instead of paying
// the cold build.
func TestWarmHonorsContext(t *testing.T) {
	ds := dataset.SimNBA(xrand.New(1), 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(0)
	if err := e.Warm(ctx, ds, 0, Options{Seed: 1}); err == nil {
		t.Fatal("cancelled warm succeeded")
	}
}
