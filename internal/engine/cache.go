package engine

import (
	"container/list"
	"sync"
)

// Cache is a concurrency-safe LRU map from solve-request keys to Solutions.
// Values stored are owned by the cache; Engine.cached clones on the way in
// and out.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recent
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key string
	sol *Solution
}

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Len    int    `json:"len"`
	Cap    int    `json:"cap"`
}

// NewCache returns an LRU cache holding at most capacity solutions.
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached solution for key, promoting it to most-recent.
func (c *Cache) Get(key string) (*Solution, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).sol, true
}

// Add stores sol under key, evicting the least-recently-used entry when the
// cache is full. Re-adding an existing key refreshes its value and recency.
func (c *Cache) Add(key string, sol *Solution) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).sol = sol
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, sol: sol})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Lookup returns the cached solution for key, promoting it and counting a
// hit when present — but, unlike Get, counting nothing when absent. It is
// the probe behind the serving fast path, where a miss is followed by a
// scheduled solve whose own Get records the authoritative miss.
func (c *Cache) Lookup(key string) (*Solution, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).sol, true
}

// Contains reports whether key is resident without touching the hit/miss
// counters or the LRU order — the scheduler's passive warm probe.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Stats snapshots the hit/miss counters and occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Len: c.ll.Len(), Cap: c.cap}
}
