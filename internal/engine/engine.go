// Package engine is the solver layer of the repository: a pluggable
// algorithm registry, context-aware cancellable solves, and a
// concurrency-safe LRU solution cache.
//
// The public rankregret package, the CLIs, and the rrmd serving daemon all
// dispatch through an Engine instead of hard-coding algorithm switches: an
// Algorithm is a named Solver registered at init time (see Register), a
// solve call carries a context.Context that the hot loops of the underlying
// algorithms check periodically, and identical (dataset, algorithm,
// parameters) requests are answered from the cache without recomputation.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/rankregret/rankregret/internal/algohd"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/obs"
)

// ErrDimension is returned when a 2D-only solver is applied to d != 2.
var ErrDimension = errors.New("engine: algorithm requires a 2-dimensional dataset")

// Options carries the solver parameters shared by every algorithm. The zero
// value means: full utility space, the paper's default parameters, seed 1.
type Options struct {
	// Space restricts the utility space (nil = full orthant = RRM).
	Space funcspace.Space
	// SpaceKey optionally overrides the cache-key component derived from
	// Space. Callers constructing spaces from a textual spec (e.g. "weak:2")
	// should pass the spec so equal specs share cache entries.
	SpaceKey string
	// CacheSalt is an extra cache-key component. Multi-tenant callers (e.g.
	// a daemon with a named-dataset registry) should set it to the dataset's
	// registry name so entries stay distinct even if two datasets' 64-bit
	// fingerprints collide.
	CacheSalt string
	// Gamma is HDRRM's polar-grid resolution (0 = paper default 6).
	Gamma int
	// Delta is HDRRM's error probability (0 = paper default 0.03).
	Delta float64
	// Samples overrides HDRRM's sample count m (0 = Theorem 10 formula).
	Samples int
	// MaxSamples caps the Theorem 10 formula (0 = library default 50 000;
	// negative = uncapped).
	MaxSamples int
	// Seed drives all randomness (0 is normalized to 1 by callers).
	Seed int64
	// Sampler overrides the preference distribution Da is drawn from. A
	// non-nil Sampler disables caching: function values have no stable
	// identity to key on.
	Sampler algohd.Sampler
	// VecSets is the first-tier cache HDRRM-family solvers draw their
	// shared vector sets from. The engine fills it in with its own tier
	// when unset; it is not part of any cache key. Leave nil to have each
	// solve build a private vector set.
	VecSets *VecSetCache
	// NoVecSetCache opts this solve out of the VecSet tier entirely: the
	// solver builds a private vector set that is garbage-collected with the
	// solve. Results are identical either way; set this for huge datasets
	// touched once, where retaining the tier's top-K lists would cost more
	// memory than the sweep reuse is worth.
	NoVecSetCache bool
	// Parallelism bounds the worker goroutines of the HDRRM-family top-K
	// scoring passes (0 = GOMAXPROCS). Results are bit-identical at every
	// setting, which is why it is not part of any cache key.
	Parallelism int
}

// hd converts Options to the algohd option struct, applying the paper
// defaults exactly as the pre-engine rankregret.Solve did.
func (o Options) hd() algohd.Options {
	ho := algohd.DefaultOptions()
	if o.Gamma > 0 {
		ho.Gamma = o.Gamma
	}
	if o.Delta > 0 {
		ho.Delta = o.Delta
	}
	if o.Samples > 0 {
		ho.M = o.Samples
	}
	switch {
	case o.MaxSamples > 0:
		ho.MaxM = o.MaxSamples
	case o.MaxSamples < 0:
		ho.MaxM = 0
	}
	ho.Seed = o.Seed
	ho.Space = o.Space
	ho.Sampler = o.Sampler
	ho.Parallelism = o.Parallelism
	return ho
}

// spaceKey returns the cache-key component identifying the utility space.
func (o Options) spaceKey() string {
	if o.SpaceKey != "" {
		return o.SpaceKey
	}
	if o.Space == nil {
		return "full"
	}
	// %+v over the concrete value is deterministic and includes the
	// constraint data, so structurally different spaces key differently.
	return fmt.Sprintf("%T%+v", o.Space, o.Space)
}

// Solution is the output of an engine solve.
type Solution struct {
	// IDs are the chosen tuple indices into the dataset, ascending.
	IDs []int
	// RankRegret is the solver's reported rank-regret (see the Solver's
	// documentation for its exact semantics; 0 when the solver reports none).
	RankRegret int
	// Exact records whether RankRegret is exact over the full space.
	Exact bool
	// Algorithm is the registered name of the solver that produced this.
	Algorithm string
}

// clone returns a deep copy so cached solutions are never aliased by
// callers.
func (s *Solution) clone() *Solution {
	out := *s
	out.IDs = append([]int(nil), s.IDs...)
	return &out
}

// Solver is one algorithm. Implementations must be safe for concurrent use
// and honor ctx cancellation in their long-running loops (a nil ctx
// disables the checks).
type Solver interface {
	// Name is the registry identifier, e.g. "hdrrm".
	Name() string
	// Solve computes a size-r rank-regret minimizing subset of ds.
	Solve(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (*Solution, error)
}

// DualSolver is implemented by solvers that also answer the dual
// rank-regret representative (RRR) problem: the minimum-size set with
// rank-regret at most k.
type DualSolver interface {
	Solver
	SolveRRR(ctx context.Context, ds *dataset.Dataset, k int, opts Options) (*Solution, error)
}

// Engine dispatches solves through the registry and answers repeated
// requests from its two-tier cache: an LRU of full solutions keyed by every
// solve parameter, over an LRU of shared vector sets (VecSetCache) keyed
// only by what the expensive precomputation depends on, so solves that
// differ in r, k, or algorithm still share it. The zero value is not
// usable; call New.
type Engine struct {
	cache   *Cache
	vecsets *VecSetCache

	// obs is the per-stage latency instrumentation, wired by Instrument
	// before the engine serves traffic; nil = uninstrumented.
	obs *engineObs

	// flight coalesces concurrent identical cold requests so a dogpile of
	// cache misses computes the solve once.
	flightMu sync.Mutex
	flight   map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when the leader finishes (or panics)
	sol  *Solution     // private clone, set on success
	err  error
}

// DefaultCacheSize is the solution-cache capacity of New(0) and of the
// package-level Default engine.
const DefaultCacheSize = 256

// New returns an Engine with an LRU solution cache of the given capacity
// (0 = DefaultCacheSize, negative = caching disabled) and a VecSet tier of
// DefaultVecSetCacheSize (disabled together with the solution cache).
func New(cacheSize int) *Engine {
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	e := &Engine{flight: make(map[string]*flightCall)}
	if cacheSize > 0 {
		e.cache = NewCache(cacheSize)
		e.vecsets = NewVecSetCache(DefaultVecSetCacheSize)
	}
	return e
}

// Default is the shared engine the rankregret package-level API uses.
var Default = New(0)

// CacheStats reports the default-visible counters of the engine's cache
// (zero value when caching is disabled).
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.Stats()
}

// VecSetStats reports the counters of the engine's VecSet tier (zero value
// when caching is disabled).
func (e *Engine) VecSetStats() VecSetStats {
	if e.vecsets == nil {
		return VecSetStats{}
	}
	return e.vecsets.Stats()
}

// Metrics is the aggregate cache health of an engine, the machine-readable
// shape behind rrmd's GET /v1/metrics.
type Metrics struct {
	Solutions CacheStats  `json:"solutions"`
	VecSets   VecSetStats `json:"vecsets"`
}

// Metrics snapshots both cache tiers.
func (e *Engine) Metrics() Metrics {
	return Metrics{Solutions: e.CacheStats(), VecSets: e.VecSetStats()}
}

// keysFor precomputes the cache keys a scheduled request would hit: the
// solution-cache key (empty when the request is uncacheable or would not
// resolve) and the VecSet-tier key (empty when the tier is unavailable or
// opted out). The scheduler stores them on the job at submission so the
// affinity policy's warm probe is two map lookups per pending job.
func (e *Engine) keysFor(req Request) (solKey, vsKey string) {
	if req.Dataset == nil || req.Opts.Sampler != nil {
		return "", ""
	}
	mode := "rrm"
	if req.Mode == ModeRRR {
		mode = "rrr"
	}
	if e.cache != nil {
		if s, err := Resolve(req.Algorithm, req.Dataset.Dim()); err == nil {
			solKey = solutionKey(req.Dataset, mode, req.RK, s.Name(), req.Opts)
		}
	}
	if e.vecsets != nil && !req.Opts.NoVecSetCache {
		vsKey = vecsetKey(req.Dataset, req.Opts)
	}
	return solKey, vsKey
}

// warmKeys reports whether either cache tier already holds one of the
// precomputed keys: the affinity policy's warm probe. Probing is passive —
// no hit/miss counters move and no LRU order changes.
func (e *Engine) warmKeys(solKey, vsKey string) bool {
	if solKey != "" && e.cache != nil && e.cache.Contains(solKey) {
		return true
	}
	return vsKey != "" && e.vecsets != nil && e.vecsets.Contains(vsKey)
}

// SolveCached answers a request purely from the solution cache, reporting
// false when it is not resident. It is the serving fast path: warm-hit
// requests are answered inline at cache-hit speed and never contend for
// scheduler admission, so overload shedding only ever rejects work that
// would actually cost something. A present entry counts as a cache hit; an
// absent one counts nothing — the scheduled solve that follows records the
// authoritative miss.
func (e *Engine) SolveCached(ctx context.Context, req Request) (*Solution, bool) {
	if e.cache == nil {
		return nil, false
	}
	start := time.Now()
	end := obs.StartSpan(ctx, "cache")
	defer end()
	solKey, _ := e.keysFor(req)
	if solKey == "" {
		return nil, false
	}
	sol, ok := e.cache.Lookup(solKey)
	if !ok {
		return nil, false
	}
	e.obs.cacheProbe(start)
	return sol.clone(), true
}

// withVecSets fills in the engine's VecSet tier when the caller did not
// bring their own and has not opted out.
func (e *Engine) withVecSets(opts Options) Options {
	if opts.NoVecSetCache {
		opts.VecSets = nil
	} else if opts.VecSets == nil {
		opts.VecSets = e.vecsets
	}
	return opts
}

func validate(ds *dataset.Dataset, rk int, what string) error {
	if ds == nil || ds.N() == 0 {
		return errors.New("engine: empty dataset")
	}
	if rk < 1 {
		return fmt.Errorf("engine: %s = %d, need >= 1", what, rk)
	}
	return nil
}

// Solve dispatches a size-r RRM/RRRM solve to the named algorithm ("" =
// auto: 2drrm for d = 2, hdrrm otherwise), consulting the cache first.
func (e *Engine) Solve(ctx context.Context, ds *dataset.Dataset, r int, algo string, opts Options) (*Solution, error) {
	if err := validate(ds, r, "output size r"); err != nil {
		return nil, err
	}
	s, err := Resolve(algo, ds.Dim())
	if err != nil {
		return nil, err
	}
	return e.SolveWith(ctx, ds, r, s, opts)
}

// SolveWith runs a specific Solver instance through the engine's caching
// layer. It is the entry point for solvers that are parameterized beyond
// Options (e.g. HDRRM ablation variants) and therefore not in the registry.
func (e *Engine) SolveWith(ctx context.Context, ds *dataset.Dataset, r int, s Solver, opts Options) (*Solution, error) {
	if err := validate(ds, r, "output size r"); err != nil {
		return nil, err
	}
	opts = e.withVecSets(opts)
	return e.cached(ctx, ds, "rrm", r, s.Name(), opts, func() (*Solution, error) {
		return s.Solve(ctx, ds, r, opts)
	})
}

// SolveRRR dispatches the dual problem (minimum set with rank-regret <= k)
// to the named algorithm ("" = auto). Only solvers implementing DualSolver
// qualify; auto picks 2drrm for d = 2 and hdrrm otherwise, matching the
// paper's exact-vs-approximate split.
func (e *Engine) SolveRRR(ctx context.Context, ds *dataset.Dataset, k int, algo string, opts Options) (*Solution, error) {
	if err := validate(ds, k, "threshold k"); err != nil {
		return nil, err
	}
	if k > ds.N() {
		return nil, fmt.Errorf("engine: threshold k = %d out of range [1, %d]", k, ds.N())
	}
	s, err := Resolve(algo, ds.Dim())
	if err != nil {
		return nil, err
	}
	dual, ok := s.(DualSolver)
	if !ok {
		return nil, fmt.Errorf("engine: algorithm %q cannot solve the dual RRR problem", s.Name())
	}
	opts = e.withVecSets(opts)
	return e.cached(ctx, ds, "rrr", k, s.Name(), opts, func() (*Solution, error) {
		return dual.SolveRRR(ctx, ds, k, opts)
	})
}

// DefaultWarmBudget is the output budget r Warm solves with: a typical
// interactive query size, so the per-vector top-K lists it materializes are
// about as deep as real traffic needs.
const DefaultWarmBudget = 5

// Warm primes the engine's cache tiers for ds by running the auto-resolved
// solver with a representative output budget (r <= 0 means
// DefaultWarmBudget, clamped to the dataset size). It is the warm-start
// hook of the durability layer: after a daemon restart the caches are
// empty, so a serving layer that calls Warm in the background for every
// recovered dataset pays the cold-solve cliff proactively — the first
// client solve then finds the VecSet tier populated and takes the reuse
// (or cheap extension) path instead of a cold build. Results are identical
// either way; only latency moves. Callers must pass the same CacheSalt,
// seed, and parallelism their live solves use, or the warmed entries will
// not be the ones those solves look up.
func (e *Engine) Warm(ctx context.Context, ds *dataset.Dataset, r int, opts Options) error {
	if r <= 0 {
		r = DefaultWarmBudget
	}
	if ds != nil && r > ds.N() {
		r = ds.N()
	}
	_, err := e.Solve(ctx, ds, r, "", opts)
	return err
}

// solutionKey builds the solution-cache key from every parameter a solve
// depends on; cached and the scheduler's warm probe share it so the two
// cannot drift.
func solutionKey(ds *dataset.Dataset, mode string, rk int, algo string, opts Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%016x|%s|%s|%d|%s|%d|%g|%d|%d|%d",
		opts.CacheSalt, ds.Fingerprint(), mode, algo, rk, opts.spaceKey(),
		opts.Gamma, opts.Delta, opts.Samples, opts.MaxSamples, opts.Seed)
	return b.String()
}

// cached answers from the LRU when possible, otherwise computes and stores.
// Cached solutions are cloned on the way in and out so callers can mutate
// their copy freely. Concurrent identical cold requests are coalesced: the
// first caller computes, the rest wait and share its result. A follower
// stops waiting when its own ctx is done, and a follower whose leader
// failed (cancelled, errored, or panicked) computes independently under its
// own context.
func (e *Engine) cached(ctx context.Context, ds *dataset.Dataset, mode string, rk int, algo string, opts Options, compute func() (*Solution, error)) (*Solution, error) {
	// run wraps compute with the "solve" span and stage histogram; the
	// wrapping never touches solver inputs or outputs, so results are
	// bit-identical with tracing on or off.
	run := func() (*Solution, error) {
		start := time.Now()
		end := obs.StartSpan(ctx, "solve")
		sol, err := compute()
		end()
		e.obs.solveStage(start)
		return sol, err
	}
	cacheable := e.cache != nil && opts.Sampler == nil
	if !cacheable {
		return run()
	}
	key := solutionKey(ds, mode, rk, algo, opts)
	probeStart := time.Now()
	endProbe := obs.StartSpan(ctx, "cache")
	sol, ok := e.cache.Get(key)
	endProbe()
	e.obs.cacheProbe(probeStart)
	if ok {
		return sol.clone(), nil
	}
	e.flightMu.Lock()
	if c, ok := e.flight[key]; ok {
		e.flightMu.Unlock()
		if ctx == nil {
			<-c.done
		} else {
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if c.err == nil {
			return c.sol.clone(), nil
		}
		sol, err := run()
		if err != nil {
			return nil, err
		}
		e.cache.Add(key, sol.clone())
		return sol, nil
	}
	c := &flightCall{done: make(chan struct{})}
	// If compute panics, the deferred cleanup still unregisters the flight
	// and releases followers; the default error sends them down their
	// compute-independently path.
	c.err = errors.New("engine: solve aborted")
	e.flight[key] = c
	e.flightMu.Unlock()
	defer func() {
		e.flightMu.Lock()
		delete(e.flight, key)
		e.flightMu.Unlock()
		close(c.done)
	}()

	sol, err := run()
	if err == nil {
		stored := sol.clone()
		e.cache.Add(key, stored)
		c.sol = stored
	}
	c.err = err
	return sol, err
}
