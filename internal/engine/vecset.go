package engine

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/rankregret/rankregret/internal/algohd"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/obs"
)

// VecSetCache is the first tier of the engine's two-tier cache: shared
// vector sets (polar grid + sample stream + per-vector top-K lists, the
// expensive precomputation behind every HDRRM-family solve) keyed by
// dataset fingerprint, space, gamma, and seed. The sample count m is
// deliberately NOT part of the key: all samples come from one seeded
// stream, so a single entry serves every m as a prefix view and a
// parameter sweep over r or k pays the build cost once.
//
// Builds are coalesced per entry (SharedVecSet serializes its own build and
// extension work), so a dogpile of identical cold solves performs exactly
// one build. Sampler-backed solves have no cacheable identity and must not
// be routed here — the engine wiring enforces that.
//
// The tier is delta-aware: alongside the exact fingerprint-keyed lookup it
// maintains an identity index keyed by dataset lineage. When a solve arrives
// for a new version of a dataset whose previous version has a cached entry,
// and the dataset's delta log spans the gap without a rewrite, the new entry
// is seeded as an incremental repair of the old one (appended rows merged
// into the per-vector top-K lists, tombstoned rows remapped or re-selected)
// instead of a cold rebuild. The old entry is never modified, so solves
// pinned to the old version keep hitting it.
type VecSetCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recent
	items   map[string]*list.Element
	byIdent map[string]*list.Element // newest entry per dataset identity

	// Outcome counters, guarded by mu (not atomics) so Stats reads them
	// together with the occupancy as one coherent snapshot.
	builds     uint64
	extensions uint64
	reuses     uint64
	repairs    uint64

	// buildDur records acquire latency for the outcomes that did real work
	// (build, extension, repair); pure reuses are excluded so the histogram
	// reflects precomputation cost, not lookup noise. Wired by
	// Engine.Instrument before serving; nil = uninstrumented.
	buildDur *obs.Histogram
}

type vecsetEntry struct {
	key     string
	ident   string // identity key: salt|lineage|space|gamma|seed
	fp      uint64 // dataset fingerprint at entry creation
	version uint64 // dataset version at entry creation
	shared  *algohd.SharedVecSet
}

// VecSetStats is a snapshot of the VecSet-tier counters. Reuses counts
// solves served entirely from an existing entry; Extensions counts solves
// that reused the grid and sample prefix but had to draw further samples;
// Repairs counts solves whose entry was materialized by incrementally
// repairing a previous version's entry across the dataset's delta log.
type VecSetStats struct {
	Builds     uint64 `json:"builds"`
	Extensions uint64 `json:"extensions"`
	Reuses     uint64 `json:"reuses"`
	Repairs    uint64 `json:"repairs"`
	Len        int    `json:"len"`
	Cap        int    `json:"cap"`
}

// DefaultVecSetCacheSize is the VecSet-tier capacity of New(0). Entries
// hold the top-K lists for tens of thousands of vectors, so the tier is
// kept much smaller than the solution cache.
const DefaultVecSetCacheSize = 16

// NewVecSetCache returns a VecSet cache holding at most capacity shared
// sets.
func NewVecSetCache(capacity int) *VecSetCache {
	if capacity < 1 {
		capacity = 1
	}
	return &VecSetCache{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		byIdent: make(map[string]*list.Element),
	}
}

// Acquire returns a vector-set view for the solve described by opts with m
// sampled directions, creating, repairing, or extending the underlying
// shared set as needed. Evicting an entry never invalidates views already
// handed out.
func (c *VecSetCache) Acquire(ctx context.Context, ds *dataset.Dataset, opts Options, m int) (*algohd.VecSet, error) {
	ho := opts.hd()
	key := vecsetKey(ds, opts)
	var ib strings.Builder
	fmt.Fprintf(&ib, "%s|%d|%s|%d|%d", opts.CacheSalt, ds.Lineage(), opts.spaceKey(), ho.EffectiveGamma(), opts.Seed)
	ident := ib.String()

	c.mu.Lock()
	var shared *algohd.SharedVecSet
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		shared = el.Value.(*vecsetEntry).shared
	} else {
		if prev := c.repairSource(ident, ds); prev != nil {
			if deltas, ok := ds.Deltas(prev.version); ok && repairable(deltas) {
				// Lazy: the actual repair (or its fallback cold build) runs
				// on first Acquire of the new shared set, outside this lock.
				shared = algohd.NewRepairedVecSet(prev.shared, ds, deltas)
			}
		}
		if shared == nil {
			shared = algohd.NewSharedVecSet(ds, ho.Space, ho.EffectiveGamma(), opts.Seed, ho.Sampler)
		}
		e := &vecsetEntry{key: key, ident: ident, fp: ds.Fingerprint(), version: ds.Version(), shared: shared}
		el := c.ll.PushFront(e)
		c.items[key] = el
		if cur, ok := c.byIdent[ident]; !ok || cur.Value.(*vecsetEntry).version <= e.version {
			c.byIdent[ident] = el
		}
		if c.ll.Len() > c.cap {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			old := oldest.Value.(*vecsetEntry)
			delete(c.items, old.key)
			if c.byIdent[old.ident] == oldest {
				delete(c.byIdent, old.ident)
			}
		}
	}
	// The build itself runs outside the cache lock; SharedVecSet coalesces
	// concurrent builders on its own lock.
	c.mu.Unlock()

	start := time.Now()
	endSpan := obs.StartSpan(ctx, "build")
	vs, outcome, err := shared.Acquire(ctx, m)
	endSpan()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	switch outcome {
	case algohd.VecSetBuilt:
		c.builds++
	case algohd.VecSetExtended:
		c.extensions++
	case algohd.VecSetRepaired:
		c.repairs++
	default:
		c.reuses++
	}
	h := c.buildDur
	c.mu.Unlock()
	if h != nil && outcome != algohd.VecSetReused {
		h.ObserveSince(start)
	}
	return vs, nil
}

// instrument wires the build-latency histogram; called by Engine.Instrument
// before the cache serves traffic.
func (c *VecSetCache) instrument(h *obs.Histogram) {
	c.mu.Lock()
	c.buildDur = h
	c.mu.Unlock()
}

// vecsetKey builds the tier's exact lookup key; Acquire and the scheduler's
// warm probe share it so the two cannot drift. (m is deliberately absent —
// see the type comment.)
func vecsetKey(ds *dataset.Dataset, opts Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%016x|%s|%d|%d",
		opts.CacheSalt, ds.Fingerprint(), opts.spaceKey(), opts.hd().EffectiveGamma(), opts.Seed)
	return b.String()
}

// Contains reports whether the tier holds an entry for key without touching
// the LRU order — the scheduler's passive warm probe. A resident entry may
// still be mid-build; affinity routing to it is right anyway, since the
// build is coalesced and the routed solve shares it.
func (c *VecSetCache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// repairSource returns the identity index's entry for ds's lineage when it
// is a usable repair source: a strictly older version whose shared set still
// holds the data it was keyed with (a fingerprint mismatch means the old
// snapshot was mutated in place — the snapshot discipline was broken — and
// repairing from it would poison results). Called with c.mu held.
func (c *VecSetCache) repairSource(ident string, ds *dataset.Dataset) *vecsetEntry {
	el, ok := c.byIdent[ident]
	if !ok {
		return nil
	}
	prev := el.Value.(*vecsetEntry)
	if prev.version >= ds.Version() {
		return nil
	}
	if prev.shared.Dataset().Fingerprint() != prev.fp {
		return nil
	}
	return prev
}

// repairable reports whether a delta window can be repaired across at all:
// rewrites (Normalize, Shift, Negate, SetAttrs) change every value and force
// a rebuild. Churn-based declines are judged later, inside the lazy repair,
// where the committed lists are visible.
func repairable(deltas []dataset.Delta) bool {
	for _, d := range deltas {
		if d.Kind == dataset.DeltaRewrite {
			return false
		}
	}
	return true
}

// Stats snapshots the build/extension/reuse/repair counters and occupancy,
// coherently under one lock.
func (c *VecSetCache) Stats() VecSetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return VecSetStats{
		Builds:     c.builds,
		Extensions: c.extensions,
		Reuses:     c.reuses,
		Repairs:    c.repairs,
		Len:        c.ll.Len(),
		Cap:        c.cap,
	}
}
