package engine

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/rankregret/rankregret/internal/algohd"
	"github.com/rankregret/rankregret/internal/dataset"
)

// VecSetCache is the first tier of the engine's two-tier cache: shared
// vector sets (polar grid + sample stream + per-vector top-K lists, the
// expensive precomputation behind every HDRRM-family solve) keyed by
// dataset fingerprint, space, gamma, and seed. The sample count m is
// deliberately NOT part of the key: all samples come from one seeded
// stream, so a single entry serves every m as a prefix view and a
// parameter sweep over r or k pays the build cost once.
//
// Builds are coalesced per entry (SharedVecSet serializes its own build and
// extension work), so a dogpile of identical cold solves performs exactly
// one build. Sampler-backed solves have no cacheable identity and must not
// be routed here — the engine wiring enforces that.
type VecSetCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[string]*list.Element

	builds     atomic.Uint64
	extensions atomic.Uint64
	reuses     atomic.Uint64
}

type vecsetEntry struct {
	key    string
	shared *algohd.SharedVecSet
}

// VecSetStats is a snapshot of the VecSet-tier counters. Reuses counts
// solves served entirely from an existing entry; Extensions counts solves
// that reused the grid and sample prefix but had to draw further samples.
type VecSetStats struct {
	Builds     uint64 `json:"builds"`
	Extensions uint64 `json:"extensions"`
	Reuses     uint64 `json:"reuses"`
	Len        int    `json:"len"`
	Cap        int    `json:"cap"`
}

// DefaultVecSetCacheSize is the VecSet-tier capacity of New(0). Entries
// hold the top-K lists for tens of thousands of vectors, so the tier is
// kept much smaller than the solution cache.
const DefaultVecSetCacheSize = 16

// NewVecSetCache returns a VecSet cache holding at most capacity shared
// sets.
func NewVecSetCache(capacity int) *VecSetCache {
	if capacity < 1 {
		capacity = 1
	}
	return &VecSetCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Acquire returns a vector-set view for the solve described by opts with m
// sampled directions, creating or extending the underlying shared set as
// needed. Evicting an entry never invalidates views already handed out.
func (c *VecSetCache) Acquire(ctx context.Context, ds *dataset.Dataset, opts Options, m int) (*algohd.VecSet, error) {
	ho := opts.hd()
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%016x|%s|%d|%d", opts.CacheSalt, ds.Fingerprint(), opts.spaceKey(), ho.EffectiveGamma(), opts.Seed)
	key := b.String()

	c.mu.Lock()
	var shared *algohd.SharedVecSet
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		shared = el.Value.(*vecsetEntry).shared
	} else {
		shared = algohd.NewSharedVecSet(ds, ho.Space, ho.EffectiveGamma(), opts.Seed, ho.Sampler)
		c.items[key] = c.ll.PushFront(&vecsetEntry{key: key, shared: shared})
		if c.ll.Len() > c.cap {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*vecsetEntry).key)
		}
	}
	// The build itself runs outside the cache lock; SharedVecSet coalesces
	// concurrent builders on its own lock.
	c.mu.Unlock()

	vs, outcome, err := shared.Acquire(ctx, m)
	if err != nil {
		return nil, err
	}
	switch outcome {
	case algohd.VecSetBuilt:
		c.builds.Add(1)
	case algohd.VecSetExtended:
		c.extensions.Add(1)
	default:
		c.reuses.Add(1)
	}
	return vs, nil
}

// Stats snapshots the build/extension/reuse counters and occupancy.
func (c *VecSetCache) Stats() VecSetStats {
	c.mu.Lock()
	length, capacity := c.ll.Len(), c.cap
	c.mu.Unlock()
	return VecSetStats{
		Builds:     c.builds.Load(),
		Extensions: c.extensions.Load(),
		Reuses:     c.reuses.Load(),
		Len:        length,
		Cap:        capacity,
	}
}
