package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/algo2d"
	"github.com/rankregret/rankregret/internal/algohd"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/xrand"
)

func TestRegistry(t *testing.T) {
	algos := Algorithms()
	for _, want := range []string{"2drrm", "hdrrm", "2drrr", "mdrrrr", "mdrc", "mdrms", "mdrrr", "rms-greedy", "skyline"} {
		found := false
		for _, a := range algos {
			if a == want {
				found = true
			}
		}
		if !found {
			t.Errorf("algorithm %q not registered (have %v)", want, algos)
		}
	}
	if s, err := Resolve("", 2); err != nil || s.Name() != "2drrm" {
		t.Errorf("Resolve auto d=2 = %v, %v", s, err)
	}
	if s, err := Resolve("", 5); err != nil || s.Name() != "hdrrm" {
		t.Errorf("Resolve auto d=5 = %v, %v", s, err)
	}
	if _, err := Resolve("quantum", 2); err == nil {
		t.Error("unknown algorithm should fail to resolve")
	}
}

// goldenSolve reproduces the pre-engine rankregret.Solve dispatch by
// calling the internal algorithm entry points directly, so the golden tests
// below assert the registry path is byte-identical to the old switch.
func goldenSolve(ds *dataset.Dataset, r int, algo string, opts Options) (*Solution, error) {
	ho := opts.hd()
	switch algo {
	case "2drrm":
		var res algo2d.Result
		var err error
		if opts.Space != nil {
			res, err = algo2d.TwoDRRMRestricted(ds, r, opts.Space)
		} else {
			res, err = algo2d.TwoDRRM(ds, r)
		}
		if err != nil {
			return nil, err
		}
		return &Solution{IDs: res.IDs, RankRegret: res.RankRegret, Exact: true, Algorithm: algo}, nil
	case "2drrr":
		res, err := algo2d.TwoDRRRBaselineForRRM(ds, r)
		if err != nil {
			return nil, err
		}
		return &Solution{IDs: res.IDs, RankRegret: res.RankRegret, Exact: true, Algorithm: algo}, nil
	case "hdrrm":
		res, err := algohd.HDRRM(ds, r, ho)
		if err != nil {
			return nil, err
		}
		return &Solution{IDs: res.IDs, RankRegret: res.K, Algorithm: algo}, nil
	case "mdrrrr":
		res, err := algohd.MDRRRr(ds, r, ho)
		if err != nil {
			return nil, err
		}
		return &Solution{IDs: res.IDs, RankRegret: res.K, Algorithm: algo}, nil
	case "mdrms":
		res, err := algohd.MDRMS(ds, r, ho)
		if err != nil {
			return nil, err
		}
		return &Solution{IDs: res.IDs, Algorithm: algo}, nil
	}
	return nil, errors.New("golden: unhandled algorithm " + algo)
}

// TestGoldenDispatch checks, on seeded workloads, that registry dispatch
// returns solutions identical to direct calls into the algorithm packages.
func TestGoldenDispatch(t *testing.T) {
	island := dataset.SimIsland(xrand.New(7), 300)
	nba := dataset.SimNBA(xrand.New(7), 500)
	weak2, err := funcspace.WeakRanking(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ds   *dataset.Dataset
		r    int
		algo string
		opts Options
	}{
		{"2drrm island", island, 5, "2drrm", Options{Seed: 1}},
		{"2drrr island", island, 5, "2drrr", Options{Seed: 1}},
		{"hdrrm nba", nba, 8, "hdrrm", Options{Seed: 1, MaxSamples: 2000}},
		{"hdrrm nba restricted", nba, 8, "hdrrm", Options{Seed: 3, MaxSamples: 2000, Space: weak2}},
		{"mdrrrr nba", nba, 8, "mdrrrr", Options{Seed: 1, Samples: 512}},
		{"mdrms nba", nba, 8, "mdrms", Options{Seed: 1, Samples: 512}},
	}
	// A fresh engine per case and a second solve per engine: the first
	// exercises the compute path, the second the cache path; both must be
	// identical to the golden result.
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := goldenSolve(tc.ds, tc.r, tc.algo, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			e := New(0)
			for pass, label := range []string{"computed", "cached"} {
				got, err := e.Solve(context.Background(), tc.ds, tc.r, tc.algo, tc.opts)
				if err != nil {
					t.Fatalf("pass %d: %v", pass, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s solution = %+v, want %+v", label, got, want)
				}
			}
			if st := e.CacheStats(); st.Hits != 1 || st.Misses != 1 {
				t.Errorf("cache stats = %+v, want 1 hit / 1 miss", st)
			}
		})
	}
}

func TestSolveRRRGolden(t *testing.T) {
	island := dataset.SimIsland(xrand.New(7), 300)
	e := New(0)
	got, err := e.SolveRRR(context.Background(), island, 3, "", Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, ok, err := algo2d.TwoDRRRExact(island, 3)
	if err != nil || !ok {
		t.Fatalf("golden dual: %v ok=%v", err, ok)
	}
	if !reflect.DeepEqual(got.IDs, res.IDs) || got.RankRegret != res.RankRegret || !got.Exact {
		t.Errorf("dual solve = %+v, want %+v", got, res)
	}

	nba := dataset.SimNBA(xrand.New(7), 500)
	gotHD, err := e.SolveRRR(context.Background(), nba, 40, "", Options{Seed: 1, MaxSamples: 1500})
	if err != nil {
		t.Fatal(err)
	}
	resHD, err := algohd.HDRRR(nba, 40, Options{Seed: 1, MaxSamples: 1500}.hd())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotHD.IDs, resHD.IDs) || gotHD.RankRegret != resHD.K {
		t.Errorf("HD dual solve = %+v, want %+v", gotHD, resHD)
	}
}

// TestCancellationAbortsHDRRM starts an HDRRM solve on the full simulated
// Weather dataset — tens of seconds of work — cancels it almost
// immediately, and requires the solve to return well before completion.
func TestCancellationAbortsHDRRM(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	weather := dataset.SimWeather(xrand.New(1), 120000)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	e := New(0)
	start := time.Now()
	_, err := e.Solve(ctx, weather, 10, "hdrrm", Options{Seed: 1})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The full solve takes tens of seconds; a cooperative abort must come
	// back orders of magnitude sooner.
	if elapsed > 5*time.Second {
		t.Errorf("cancelled solve returned after %v, want well under the full solve time", elapsed)
	}
}

// TestCancellation2D does the same for the 2D DP sweep.
func TestCancellation2D(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Anticorrelated data maximizes the skyline, making the DP sweep slow.
	anti := dataset.Anticorrelated(xrand.New(1), 20000, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	e := New(0)
	start := time.Now()
	_, err := e.Solve(ctx, anti, 10, "2drrm", Options{Seed: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled 2D solve returned after %v", elapsed)
	}
}

func TestVariantSolver(t *testing.T) {
	nba := dataset.SimNBA(xrand.New(7), 400)
	opts := Options{Seed: 1, MaxSamples: 1000}
	v := algohd.Variant{NoBasis: true}
	want, err := algohd.HDRRMVariant(nba, 6, opts.hd(), v)
	if err != nil {
		t.Fatal(err)
	}
	e := New(0)
	got, err := e.SolveWith(context.Background(), nba, 6, VariantSolver(v), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.IDs, want.IDs) || got.RankRegret != want.K {
		t.Errorf("variant solve = %+v, want %+v", got, want)
	}
	// Variant solvers must not collide with plain hdrrm cache entries.
	plain, err := e.Solve(context.Background(), nba, 6, "hdrrm", opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(plain.IDs, got.IDs) && plain.RankRegret == got.RankRegret {
		t.Log("variant and plain coincide on this workload; cache keying still distinct")
	}
	if st := e.CacheStats(); st.Misses != 2 {
		t.Errorf("cache misses = %d, want 2 (distinct keys for variant and plain)", st.Misses)
	}
}

func TestValidation(t *testing.T) {
	e := New(0)
	ctx := context.Background()
	if _, err := e.Solve(ctx, nil, 5, "", Options{}); err == nil {
		t.Error("nil dataset should fail")
	}
	ds := dataset.SimIsland(xrand.New(1), 50)
	if _, err := e.Solve(ctx, ds, 0, "", Options{}); err == nil {
		t.Error("r = 0 should fail")
	}
	if _, err := e.SolveRRR(ctx, ds, 51, "", Options{}); err == nil {
		t.Error("k > n should fail")
	}
	if _, err := e.Solve(ctx, dataset.SimNBA(xrand.New(1), 50), 5, "2drrm", Options{}); !errors.Is(err, ErrDimension) {
		t.Errorf("2drrm on d=5: err = %v, want ErrDimension", err)
	}
	if _, err := e.SolveRRR(ctx, ds, 5, "mdrc", Options{}); err == nil {
		t.Error("non-dual solver on SolveRRR should fail")
	}
}

// TestCacheMutationIsolation ensures callers mutating a returned solution
// cannot corrupt the cached copy.
func TestCacheMutationIsolation(t *testing.T) {
	island := dataset.SimIsland(xrand.New(7), 200)
	e := New(0)
	first, err := e.Solve(context.Background(), island, 4, "", Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]int(nil), first.IDs...)
	for i := range first.IDs {
		first.IDs[i] = -1
	}
	second, err := e.Solve(context.Background(), island, 4, "", Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second.IDs, saved) {
		t.Errorf("cached solution corrupted by caller mutation: %v, want %v", second.IDs, saved)
	}
}

// TestSamplerDisablesCache: custom preference samplers have no stable cache
// identity, so solves carrying one must bypass the cache entirely.
func TestSamplerDisablesCache(t *testing.T) {
	nba := dataset.SimNBA(xrand.New(7), 300)
	sampler, err := algohd.GaussianPreference([]float64{1, 1, 1, 1, 1}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	e := New(0)
	opts := Options{Seed: 1, MaxSamples: 500, Sampler: sampler}
	if _, err := e.Solve(context.Background(), nba, 7, "hdrrm", opts); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Solve(context.Background(), nba, 7, "hdrrm", opts); err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Hits != 0 || st.Misses != 0 || st.Len != 0 {
		t.Errorf("sampler solves touched the cache: %+v", st)
	}
}
