package engine

import (
	"context"
	"errors"
	"fmt"

	"github.com/rankregret/rankregret/internal/algo2d"
	"github.com/rankregret/rankregret/internal/algohd"
	"github.com/rankregret/rankregret/internal/ctxutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/skyline"
)

// Registered algorithm names. The constants exist so the public facade and
// the daemons spell them identically.
const (
	AlgoTwoDRRM     = "2drrm"      // exact DP, d = 2 only
	AlgoHDRRM       = "hdrrm"      // double approximation, any d
	AlgoTwoDRRR     = "2drrr"      // Asudeh et al. 2D baseline, d = 2 only
	AlgoMDRRRr      = "mdrrrr"     // randomized k-set baseline
	AlgoMDRC        = "mdrc"       // space-partition heuristic baseline
	AlgoMDRMS       = "mdrms"      // regret-ratio (RMS) baseline
	AlgoMDRRR       = "mdrrr"      // deterministic k-set baseline (small n only)
	AlgoRMSGreedy   = "rms-greedy" // classic greedy RMS
	AlgoSkylineOnly = "skyline"    // first r skyline tuples (naive)
)

func init() {
	Register(twoDRRMSolver{})
	Register(hdrrmSolver{})
	Register(twoDRRRSolver{})
	Register(mdrrrrSolver{})
	Register(mdrcSolver{})
	Register(mdrmsSolver{})
	Register(mdrrrSolver{})
	Register(rmsGreedySolver{})
	Register(skylineSolver{})
}

// twoDRRMSolver is the paper's exact 2D dynamic program (Algorithm 1),
// restricted-space aware, and an exact DualSolver.
type twoDRRMSolver struct{}

func (twoDRRMSolver) Name() string { return AlgoTwoDRRM }

func (twoDRRMSolver) Solve(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (*Solution, error) {
	if ds.Dim() != 2 {
		return nil, ErrDimension
	}
	var res algo2d.Result
	var err error
	if opts.Space != nil {
		res, err = algo2d.TwoDRRMRestrictedCtx(ctx, ds, r, opts.Space)
	} else {
		res, err = algo2d.TwoDRRMCtx(ctx, ds, r)
	}
	if err != nil {
		return nil, err
	}
	return &Solution{IDs: res.IDs, RankRegret: res.RankRegret, Exact: true, Algorithm: AlgoTwoDRRM}, nil
}

func (twoDRRMSolver) SolveRRR(ctx context.Context, ds *dataset.Dataset, k int, opts Options) (*Solution, error) {
	if ds.Dim() != 2 {
		return nil, ErrDimension
	}
	var res algo2d.Result
	var ok bool
	var err error
	if opts.Space != nil {
		res, ok, err = algo2d.TwoDRRRExactRestrictedCtx(ctx, ds, k, opts.Space)
	} else {
		res, ok, err = algo2d.TwoDRRRExactCtx(ctx, ds, k)
	}
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("engine: no subset achieves rank-regret %d", k)
	}
	return &Solution{IDs: res.IDs, RankRegret: res.RankRegret, Exact: true, Algorithm: AlgoTwoDRRM}, nil
}

// sharedVecSet acquires the solve's vector set from the VecSet cache tier
// when one is wired in and the solve has a cacheable identity. A nil return
// with nil error means "build privately" — the standalone algohd entry
// points then behave exactly as before the tier existed.
func sharedVecSet(ctx context.Context, ds *dataset.Dataset, opts Options, m int) (*algohd.VecSet, error) {
	if opts.VecSets == nil || opts.Sampler != nil {
		return nil, nil
	}
	return opts.VecSets.Acquire(ctx, ds, opts, m)
}

// hdrrmSolver is the paper's HDRRM (Algorithm 3) and, as a DualSolver, a
// single ASMS pass at threshold k (Theorem 9). Both modes draw their vector
// set from the engine's VecSet cache tier when available, so solves that
// differ only in r or k share the expensive discretization.
type hdrrmSolver struct{}

func (hdrrmSolver) Name() string { return AlgoHDRRM }

func (hdrrmSolver) Solve(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (*Solution, error) {
	ho := opts.hd()
	vs, err := sharedVecSet(ctx, ds, opts, ho.SampleSize(ds.N(), ds.Dim(), r))
	if err != nil {
		return nil, err
	}
	var res algohd.Result
	if vs != nil {
		res, err = algohd.HDRRMWithVecSetCtx(ctx, ds, r, ho, vs)
	} else {
		res, err = algohd.HDRRMCtx(ctx, ds, r, ho)
	}
	if err != nil {
		return nil, err
	}
	return &Solution{IDs: res.IDs, RankRegret: res.K, Algorithm: AlgoHDRRM}, nil
}

func (hdrrmSolver) SolveRRR(ctx context.Context, ds *dataset.Dataset, k int, opts Options) (*Solution, error) {
	ho := opts.hd()
	vs, err := sharedVecSet(ctx, ds, opts, ho.SampleSizeRRR(ds.N(), ds.Dim(), k))
	if err != nil {
		return nil, err
	}
	var res algohd.Result
	if vs != nil {
		res, err = algohd.HDRRRWithVecSetCtx(ctx, ds, k, ho, vs)
	} else {
		res, err = algohd.HDRRRCtx(ctx, ds, k, ho)
	}
	if err != nil {
		return nil, err
	}
	return &Solution{IDs: res.IDs, RankRegret: res.K, Algorithm: AlgoHDRRM}, nil
}

// VariantSolver wraps an HDRRM ablation variant as an engine Solver so
// ablation studies run through the same caching and cancellation layer. The
// name is "hdrrm:<variant>"; variants are not in the registry — pass the
// instance to Engine.SolveWith.
func VariantSolver(v algohd.Variant) Solver { return variantSolver{v} }

type variantSolver struct{ v algohd.Variant }

func (s variantSolver) Name() string { return "hdrrm:" + s.v.Name() }

func (s variantSolver) Solve(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (*Solution, error) {
	ho := opts.hd()
	var vs *algohd.VecSet
	var err error
	if !s.v.NoGrid {
		// Grid-keeping variants share the full algorithm's vector set: the
		// NoSamples ablation is simply the m = 0 prefix view. NoGrid strips
		// the grid and cannot share a top-K cache, so it builds privately.
		m := 0
		if !s.v.NoSamples {
			m = ho.SampleSize(ds.N(), ds.Dim(), r)
		}
		vs, err = sharedVecSet(ctx, ds, opts, m)
		if err != nil {
			return nil, err
		}
	}
	var res algohd.Result
	if vs != nil {
		res, err = algohd.HDRRMVariantWithVecSetCtx(ctx, ds, r, ho, s.v, vs)
	} else {
		res, err = algohd.HDRRMVariantCtx(ctx, ds, r, ho, s.v)
	}
	if err != nil {
		return nil, err
	}
	return &Solution{IDs: res.IDs, RankRegret: res.K, Algorithm: AlgoHDRRM}, nil
}

// twoDRRRSolver is the Asudeh et al. 2D baseline adapted to RRM.
type twoDRRRSolver struct{}

func (twoDRRRSolver) Name() string { return AlgoTwoDRRR }

func (twoDRRRSolver) Solve(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (*Solution, error) {
	if ds.Dim() != 2 {
		return nil, ErrDimension
	}
	if opts.Space != nil {
		return nil, errors.New("engine: 2DRRR baseline does not support restricted spaces")
	}
	res, err := algo2d.TwoDRRRBaselineForRRMCtx(ctx, ds, r)
	if err != nil {
		return nil, err
	}
	return &Solution{IDs: res.IDs, RankRegret: res.RankRegret, Exact: true, Algorithm: AlgoTwoDRRR}, nil
}

// mdrrrrSolver is the randomized k-set hitting-set baseline.
type mdrrrrSolver struct{}

func (mdrrrrSolver) Name() string { return AlgoMDRRRr }

func (mdrrrrSolver) Solve(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (*Solution, error) {
	res, err := algohd.MDRRRrCtx(ctx, ds, r, opts.hd())
	if err != nil {
		return nil, err
	}
	return &Solution{IDs: res.IDs, RankRegret: res.K, Algorithm: AlgoMDRRRr}, nil
}

// mdrcSolver is the space-partition heuristic baseline.
type mdrcSolver struct{}

func (mdrcSolver) Name() string { return AlgoMDRC }

func (mdrcSolver) Solve(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (*Solution, error) {
	if opts.Space != nil {
		return nil, errors.New("engine: MDRC does not support restricted spaces")
	}
	res, err := algohd.MDRCCtx(ctx, ds, r)
	if err != nil {
		return nil, err
	}
	return &Solution{IDs: res.IDs, Algorithm: AlgoMDRC}, nil
}

// mdrmsSolver is the regret-ratio minimization baseline.
type mdrmsSolver struct{}

func (mdrmsSolver) Name() string { return AlgoMDRMS }

func (mdrmsSolver) Solve(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (*Solution, error) {
	res, err := algohd.MDRMSCtx(ctx, ds, r, opts.hd())
	if err != nil {
		return nil, err
	}
	return &Solution{IDs: res.IDs, Algorithm: AlgoMDRMS}, nil
}

// mdrrrSolver is the deterministic k-set baseline (small n only).
type mdrrrSolver struct{}

func (mdrrrSolver) Name() string { return AlgoMDRRR }

func (mdrrrSolver) Solve(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (*Solution, error) {
	res, err := algohd.MDRRRCtx(ctx, ds, r, opts.hd(), 0)
	if err != nil {
		return nil, err
	}
	return &Solution{IDs: res.IDs, RankRegret: res.K, Algorithm: AlgoMDRRR}, nil
}

// rmsGreedySolver is the classic greedy RMS algorithm.
type rmsGreedySolver struct{}

func (rmsGreedySolver) Name() string { return AlgoRMSGreedy }

func (rmsGreedySolver) Solve(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (*Solution, error) {
	res, err := algohd.RMSGreedyCtx(ctx, ds, r, opts.hd())
	if err != nil {
		return nil, err
	}
	return &Solution{IDs: res.IDs, Algorithm: AlgoRMSGreedy}, nil
}

// skylineSolver returns the first r skyline (or U-skyline) tuples — the
// naive candidate-set truncation.
type skylineSolver struct{}

func (skylineSolver) Name() string { return AlgoSkylineOnly }

func (skylineSolver) Solve(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (*Solution, error) {
	if err := ctxutil.Cancelled(ctx); err != nil {
		return nil, err
	}
	var ids []int
	var err error
	if opts.Space == nil {
		ids = skyline.Compute(ds)
	} else {
		ids, err = skyline.ComputeRestricted(ds, opts.Space)
	}
	if err != nil {
		return nil, err
	}
	if len(ids) > r {
		ids = ids[:r]
	}
	return &Solution{IDs: ids, Algorithm: AlgoSkylineOnly}, nil
}
