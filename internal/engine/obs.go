package engine

import (
	"time"

	"github.com/rankregret/rankregret/internal/obs"
)

// engineObs holds the engine's per-stage latency instruments. It is wired
// once by Instrument before the engine serves traffic; a nil field set means
// the engine runs uninstrumented (the package-level Default, unit tests).
type engineObs struct {
	stageCache *obs.Histogram // solution-cache probe latency
	stageSolve *obs.Histogram // solver compute latency (cache misses only)
}

// Instrument registers the engine's latency histograms with reg and starts
// recording into them. The same "stage" label dimension carries the cache
// probe, the VecSet build, and the solver compute, so one query shows where
// a solve's time went. Call before the engine serves traffic; calling it
// concurrently with solves is a data race by design (instrumentation is
// construction-time wiring, not a runtime toggle).
func (e *Engine) Instrument(reg *obs.Registry) {
	hv := reg.HistogramVec("rrmd_solve_stage_duration_seconds",
		"Solve time by stage: cache = solution-cache probe, build = vecset acquire, solve = solver compute.",
		"stage", nil)
	e.obs = &engineObs{
		stageCache: hv.With("cache"),
		stageSolve: hv.With("solve"),
	}
	if e.vecsets != nil {
		e.vecsets.instrument(hv.With("build"))
	}
}

// cacheProbe records one solution-cache probe duration (nil-safe).
func (o *engineObs) cacheProbe(start time.Time) {
	if o != nil {
		o.stageCache.ObserveSince(start)
	}
}

// solveStage records one solver-compute duration (nil-safe).
func (o *engineObs) solveStage(start time.Time) {
	if o != nil {
		o.stageSolve.ObserveSince(start)
	}
}
