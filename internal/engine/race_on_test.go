//go:build race

package engine

// raceEnabled relaxes timing assertions when the race detector multiplies
// every memory access cost.
const raceEnabled = true
