package engine

import (
	"fmt"
	"sort"
	"sync"
)

var (
	regMu    sync.RWMutex
	registry = map[string]Solver{}
)

// Register adds a Solver to the registry under its Name. It panics on a
// duplicate name: registration happens at init time and a collision is a
// programming error.
func Register(s Solver) {
	name := s.Name()
	if name == "" {
		panic("engine: Register with empty solver name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: Register called twice for solver %q", name))
	}
	registry[name] = s
}

// Lookup returns the registered solver with the given name.
func Lookup(name string) (Solver, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Algorithms returns the sorted names of every registered solver.
func Algorithms() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Resolve maps an algorithm name to a Solver. The empty name selects
// automatically: the exact 2D dynamic program for dim = 2, HDRRM otherwise
// (the paper's primary algorithms).
func Resolve(name string, dim int) (Solver, error) {
	if name == "" {
		if dim == 2 {
			name = "2drrm"
		} else {
			name = "hdrrm"
		}
	}
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown algorithm %q (have %v)", name, Algorithms())
	}
	return s, nil
}
