// Package obs is the observability core of the serving stack: a
// dependency-free metrics registry (atomic counters, gauges, and fixed-bucket
// latency histograms) with a Prometheus text-exposition writer, plus
// lightweight per-request tracing (request ids, per-stage span timelines, and
// a bounded recent-traces ring).
//
// The package deliberately depends on nothing but the standard library, so
// every layer of the stack — engine, scheduler, store, daemon — can record
// into one registry without import cycles. Instruments are cheap enough for
// hot paths: counters are a single atomic add, histograms one short mutex
// hold (the mutex is what makes a scrape's bucket/sum/count triple exactly
// coherent, which the exposition promises).
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency histogram layout, in seconds: sub-ms
// through 10s, roughly logarithmic. It brackets everything the serving stack
// measures — cache probes (µs), WAL fsyncs (sub-ms to ms), cold solves
// (hundreds of ms), and queue waits under overload (seconds).
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing counter. The zero value is unusable;
// create counters through a Registry so they are exported.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value (float64 behind an atomic). Use
// GaugeFunc when a subsystem already owns the value; use Gauge when the
// metric is computed on a schedule (e.g. SLO evaluations) and must read the
// same between scrapes.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency histogram. Observations are guarded by
// a mutex (not per-bucket atomics) so a Snapshot — and therefore a Prometheus
// scrape — always sees a coherent triple: the +Inf bucket equals the count,
// and the sum includes every counted observation.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // per-bucket (non-cumulative); len = len(bounds)+1
	count  uint64
	sum    float64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value (seconds, for latency histograms).
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// HistogramSnapshot is one coherent view of a histogram.
type HistogramSnapshot struct {
	Bounds     []float64 // ascending upper bounds; +Inf implicit
	Cumulative []uint64  // cumulative count per bound, then +Inf (== Count)
	Count      uint64
	Sum        float64
}

// Snapshot returns a coherent copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return HistogramSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: cum,
		Count:      h.count,
		Sum:        h.sum,
	}
}

// metricType is the exposition TYPE of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one sample stream of a family: an instrument or a read-time
// callback, with at most one label pair.
type series struct {
	labelValue string // "" when the family is unlabeled
	counter    *Counter
	hist       *Histogram
	gauge      *Gauge
	fn         func() float64           // counterFunc / gaugeFunc callback
	histFn     func() HistogramSnapshot // histogramFunc callback
}

// family is one named metric with HELP/TYPE metadata and its series.
type family struct {
	name, help string
	typ        metricType
	labelName  string // "" when unlabeled
	bounds     []float64

	mu     sync.Mutex
	series []series
	byLbl  map[string]int
}

// Registry holds named metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use. Registering
// the same name twice with a different type, help, or label layout panics:
// that is a programming error, not a runtime condition.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register installs (or fetches) the family named name, enforcing metadata
// consistency.
func (r *Registry) register(name, help string, typ metricType, labelName string, bounds []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if labelName != "" && !validName(labelName) {
		panic(fmt.Sprintf("obs: invalid label name %q", labelName))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || f.help != help || f.labelName != labelName {
			panic(fmt.Sprintf("obs: metric %q re-registered with different metadata", name))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labelName: labelName,
		bounds: append([]float64(nil), bounds...), byLbl: make(map[string]int)}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

// one returns the family's single unlabeled series, creating it via mk.
func (f *family) one(mk func() series) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.series) == 0 {
		f.series = append(f.series, mk())
	}
	return &f.series[0]
}

// with returns the series for a label value, creating it via mk. Idempotent
// per value.
func (f *family) with(value string, mk func() series) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if i, ok := f.byLbl[value]; ok {
		return &f.series[i]
	}
	s := mk()
	s.labelValue = value
	f.series = append(f.series, s)
	f.byLbl[value] = len(f.series) - 1
	return &f.series[len(f.series)-1]
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, "", nil)
	return f.one(func() series { return series{counter: &Counter{}} }).counter
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for subsystems that already keep their own counters
// (cache hits, scheduler totals, WAL records), so the exposition and the
// JSON metrics surface read the same underlying state instead of double
// bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeCounter, "", nil)
	f.one(func() series { return series{fn: fn} })
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeGauge, "", nil)
	f.one(func() series { return series{fn: fn} })
}

// Gauge registers (or fetches) an unlabeled settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, "", nil)
	return f.one(func() series { return series{gauge: &Gauge{}} }).gauge
}

// GaugeVec registers a settable gauge family with one label dimension.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, typeGauge, label, nil)}
}

// GaugeVec is a labeled settable gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(value string) *Gauge {
	return v.f.with(value, func() series { return series{gauge: &Gauge{}} }).gauge
}

// HistogramFunc registers a histogram whose whole snapshot is produced by fn
// at scrape time — the bridge for histograms maintained outside the registry,
// such as the Go runtime's GC-pause and scheduler-latency distributions. The
// snapshot must satisfy the exposition invariants: ascending bounds,
// non-decreasing cumulative counts, and Cumulative values never exceeding
// Count.
func (r *Registry) HistogramFunc(name, help string, fn func() HistogramSnapshot) {
	f := r.register(name, help, typeHistogram, "", nil)
	f.one(func() series { return series{histFn: fn} })
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// bucket upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	f := r.register(name, help, typeHistogram, "", bounds)
	return f.one(func() series { return series{hist: newHistogram(f.bounds)} }).hist
}

// HistogramVec registers a histogram family with one label dimension.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, typeHistogram, label, bounds)}
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for one label value, creating it on first use.
func (v *HistogramVec) With(value string) *Histogram {
	return v.f.with(value, func() series { return series{hist: newHistogram(v.f.bounds)} }).hist
}

// CounterVec registers a counter family with one label dimension.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, label, nil)}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	return v.f.with(value, func() series { return series{counter: &Counter{}} }).counter
}
