package slo

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/obs"
)

func TestParseObjective(t *testing.T) {
	o, err := ParseObjective("solve:p99<250ms@99.9")
	if err != nil {
		t.Fatal(err)
	}
	if o.Name != "solve_p99" || o.Source != "solve" {
		t.Fatalf("name/source = %q/%q", o.Name, o.Source)
	}
	if math.Abs(o.Quantile-0.99) > 1e-12 || math.Abs(o.ThresholdSeconds-0.25) > 1e-12 ||
		math.Abs(o.Target-0.999) > 1e-12 {
		t.Fatalf("parsed numbers wrong: %+v", o)
	}
	if o.Spec != "solve:p99<250ms@99.9" {
		t.Fatalf("spec not preserved: %q", o.Spec)
	}

	// Fractional quantiles keep a metrics-safe name.
	o, err = ParseObjective("scrape:p99.9<50ms@99")
	if err != nil {
		t.Fatal(err)
	}
	if o.Name != "scrape_p99_9" {
		t.Fatalf("fractional quantile name = %q, want scrape_p99_9", o.Name)
	}

	for _, bad := range []string{
		"",
		"solve",
		"solve:99<250ms@99.9",   // missing p
		"solve:p99<250ms",       // missing target
		"solve:p99@99.9",        // missing threshold
		":p99<250ms@99.9",       // empty source
		"solve:p0<250ms@99.9",   // quantile out of range
		"solve:p100<250ms@99.9", // quantile out of range
		"solve:p99<-1ms@99.9",   // negative threshold
		"solve:p99<banana@99.9", // unparseable duration
		"solve:p99<250ms@0",     // target out of range
		"solve:p99<250ms@100",   // target out of range
	} {
		if _, err := ParseObjective(bad); err == nil {
			t.Errorf("ParseObjective(%q) accepted invalid spec", bad)
		}
	}
}

func TestDefaultObjectives(t *testing.T) {
	defs := DefaultObjectives()
	if len(defs) != 3 {
		t.Fatalf("defaults = %d, want 3", len(defs))
	}
	sources := map[string]bool{}
	for _, o := range defs {
		sources[o.Source] = true
	}
	for _, want := range []string{"solve", "mutate", "scrape"} {
		if !sources[want] {
			t.Fatalf("defaults missing source %q (have %v)", want, sources)
		}
	}
}

// fakeSource is a mutable cumulative histogram the tests feed events into.
type fakeSource struct {
	bounds []float64
	counts []uint64 // per-bucket (not cumulative), +Inf last
	sum    float64
}

func newFakeSource(bounds ...float64) *fakeSource {
	return &fakeSource{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// observe records n events into the bucket for value v.
func (f *fakeSource) observe(v float64, n uint64) {
	idx := len(f.bounds)
	for i, b := range f.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	f.counts[idx] += n
	f.sum += v * float64(n)
}

func (f *fakeSource) snapshot() obs.HistogramSnapshot {
	cum := make([]uint64, len(f.counts))
	var run uint64
	for i, c := range f.counts {
		run += c
		cum[i] = run
	}
	return obs.HistogramSnapshot{
		Bounds:     append([]float64(nil), f.bounds...),
		Cumulative: cum,
		Count:      run,
		Sum:        f.sum,
	}
}

// testEngine builds an engine over a fake clock and a fake "solve" source
// with compressed windows: fast 1m, slow 5m, long 10m.
func testEngine(t *testing.T, cfg Config, src *fakeSource, spec string) (*Engine, *time.Time) {
	t.Helper()
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cfg.Now = func() time.Time { return now }
	if cfg.FastWindow == 0 {
		cfg.FastWindow = time.Minute
	}
	if cfg.SlowWindow == 0 {
		cfg.SlowWindow = 5 * time.Minute
	}
	if cfg.LongWindow == 0 {
		cfg.LongWindow = 10 * time.Minute
	}
	e := New(cfg)
	e.Register("solve", src.snapshot)
	o, err := ParseObjective(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Add(o); err != nil {
		t.Fatal(err)
	}
	return e, &now
}

func TestEngineAddErrors(t *testing.T) {
	e := New(Config{})
	e.Register("solve", newFakeSource(0.1).snapshot)
	o, _ := ParseObjective("mutate:p99<100ms@99.9")
	if err := e.Add(o); err == nil || !strings.Contains(err.Error(), "unknown source") {
		t.Fatalf("unknown source err = %v", err)
	}
	o, _ = ParseObjective("solve:p99<250ms@99.9")
	if err := e.Add(o); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(o); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate err = %v", err)
	}
	if got := e.Objectives(); len(got) != 1 || got[0].Name != "solve_p99" {
		t.Fatalf("objectives = %+v", got)
	}
}

func TestEngineWindowDeltas(t *testing.T) {
	src := newFakeSource(0.1, 0.25, 1)
	e, now := testEngine(t, Config{}, src, "solve:p99<250ms@99")

	// 100 good events, then evaluate: full compliance, zero burn.
	src.observe(0.05, 100)
	s := e.Eval()[0]
	if s.Compliance != 1 || s.BurnRateFast != 0 || s.FastBurnAlarm {
		t.Fatalf("clean window: %+v", s)
	}
	if s.EffThresholdSeconds != 0.25 {
		t.Fatalf("threshold should snap onto the 0.25 bound, got %v", s.EffThresholdSeconds)
	}

	// 10 bad events land inside the fast window: 110 total, 10 bad.
	*now = now.Add(30 * time.Second)
	src.observe(0.9, 10)
	s = e.Eval()[0]
	wantCompliance := 100.0 / 110.0
	if math.Abs(s.Compliance-wantCompliance) > 1e-9 {
		t.Fatalf("compliance = %v, want %v", s.Compliance, wantCompliance)
	}
	// Fast window spans everything so far; burn = badFrac / (1 - target).
	wantBurn := (10.0 / 110.0) / 0.01
	if math.Abs(s.BurnRateFast-wantBurn) > 1e-9 {
		t.Fatalf("fast burn = %v, want %v", s.BurnRateFast, wantBurn)
	}

	// Advance past the fast window: the bad batch ages out of fast (burn
	// drops to 0 there) but stays visible in slow and long.
	*now = now.Add(2 * time.Minute)
	s = e.Eval()[0]
	if s.BurnRateFast != 0 {
		t.Fatalf("aged-out fast burn = %v, want 0", s.BurnRateFast)
	}
	if s.BurnRateSlow == 0 {
		t.Fatalf("slow burn lost the bad batch: %+v", s)
	}
	if math.Abs(s.Compliance-wantCompliance) > 1e-9 {
		t.Fatalf("long compliance = %v, want %v", s.Compliance, wantCompliance)
	}

	// Advance past the long window: everything ages out, budget restored.
	*now = now.Add(11 * time.Minute)
	s = e.Eval()[0]
	if s.Compliance != 1 || s.ErrorBudgetRemaining != 1 {
		t.Fatalf("after long window: %+v", s)
	}
}

func TestEngineThresholdPastLastBound(t *testing.T) {
	src := newFakeSource(0.1, 0.25)
	e, _ := testEngine(t, Config{}, src, "solve:p99<10s@99")
	src.observe(5, 50) // +Inf bucket, still under the 10s threshold
	s := e.Eval()[0]
	if s.Compliance != 1 {
		t.Fatalf("threshold past last bound must count all events good: %+v", s)
	}
	if s.EffThresholdSeconds != 10 {
		t.Fatalf("effective threshold = %v, want raw 10", s.EffThresholdSeconds)
	}
}

func TestEngineFastBurnAlarmRisingEdge(t *testing.T) {
	src := newFakeSource(0.1)
	var fired []Status
	e, now := testEngine(t, Config{
		MinEvents:  5,
		OnFastBurn: func(s Status) { fired = append(fired, s) },
	}, src, "solve:p99<100ms@99")

	// Everything bad: burn = 100x, way past 14.4 in both windows.
	src.observe(2, 20)
	s := e.Eval()[0]
	if !s.FastBurnAlarm {
		t.Fatalf("alarm should raise: %+v", s)
	}
	if len(fired) != 1 {
		t.Fatalf("OnFastBurn fired %d times, want 1", len(fired))
	}

	// Alarm persists across Evals without re-firing the callback.
	*now = now.Add(10 * time.Second)
	src.observe(2, 5)
	if s = e.Eval()[0]; !s.FastBurnAlarm {
		t.Fatalf("alarm should stay raised: %+v", s)
	}
	if len(fired) != 1 {
		t.Fatalf("OnFastBurn re-fired while raised: %d", len(fired))
	}

	// Burn stops; the bad batch ages out of the fast window and the alarm
	// clears (slow still shows it, but the multi-window rule needs both).
	*now = now.Add(2 * time.Minute)
	if s = e.Eval()[0]; s.FastBurnAlarm {
		t.Fatalf("alarm should clear once fast window is clean: %+v", s)
	}

	// A fresh burn is a new rising edge.
	*now = now.Add(10 * time.Second)
	src.observe(2, 20)
	if s = e.Eval()[0]; !s.FastBurnAlarm {
		t.Fatalf("second burn should re-raise: %+v", s)
	}
	if len(fired) != 2 {
		t.Fatalf("OnFastBurn fired %d times across two edges, want 2", len(fired))
	}
}

func TestEngineMinEventsGuard(t *testing.T) {
	src := newFakeSource(0.1)
	e, _ := testEngine(t, Config{MinEvents: 50}, src, "solve:p99<100ms@99")
	// 10 events, all bad — massive burn rate, but below the event floor.
	src.observe(2, 10)
	s := e.Eval()[0]
	if s.BurnRateFast < 14.4 {
		t.Fatalf("test premise broken: burn = %v", s.BurnRateFast)
	}
	if s.FastBurnAlarm {
		t.Fatalf("alarm raised on %d events with MinEvents=50", s.Windows[0].Total)
	}
}

func TestEngineGaugesMatchStatuses(t *testing.T) {
	reg := obs.NewRegistry()
	src := newFakeSource(0.1, 0.25)
	e, _ := testEngine(t, Config{Registry: reg, MinEvents: 5}, src, "solve:p99<250ms@99")
	src.observe(0.05, 90)
	src.observe(2, 10)
	s := e.Eval()[0]

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict parse: %v\n%s", err, buf.String())
	}
	series := func(fam string) float64 {
		v, ok := exp.Value(fam + `{objective="solve_p99"}`)
		if !ok {
			t.Fatalf("missing %s series:\n%s", fam, buf.String())
		}
		return v
	}
	if got := series("rrmd_slo_target"); got != 0.99 {
		t.Fatalf("target gauge = %v", got)
	}
	if got := series("rrmd_slo_compliance"); math.Abs(got-s.Compliance) > 1e-9 {
		t.Fatalf("compliance gauge %v != status %v", got, s.Compliance)
	}
	if got := series("rrmd_slo_burn_rate_fast"); math.Abs(got-s.BurnRateFast) > 1e-9 {
		t.Fatalf("fast burn gauge %v != status %v", got, s.BurnRateFast)
	}
	if got := series("rrmd_slo_error_budget_remaining"); math.Abs(got-s.ErrorBudgetRemaining) > 1e-9 {
		t.Fatalf("budget gauge %v != status %v", got, s.ErrorBudgetRemaining)
	}
	wantAlarm := 0.0
	if s.FastBurnAlarm {
		wantAlarm = 1
	}
	if got := series("rrmd_slo_fast_burn_alarm"); got != wantAlarm {
		t.Fatalf("alarm gauge = %v, want %v", got, wantAlarm)
	}
}

func TestEngineSamplePruning(t *testing.T) {
	src := newFakeSource(0.1)
	e, now := testEngine(t, Config{}, src, "solve:p99<100ms@99")
	// Two hours of 10s-interval evals must not grow the sample ring past
	// the long window (plus the single baseline anchor).
	for i := 0; i < 720; i++ {
		*now = now.Add(10 * time.Second)
		src.observe(0.05, 1)
		e.Eval()
	}
	e.mu.Lock()
	n := len(e.objs[0].samples)
	e.mu.Unlock()
	// 10-minute long window at one sample per 10s = 60 live + 1 anchor.
	if n > 62 {
		t.Fatalf("sample ring grew unbounded: %d entries", n)
	}
}
