// Package slo implements a declarative SLO burn-rate engine over the obs
// histogram registry.
//
// An objective is declared as a compact spec — "solve:p99<250ms@99.9" — read
// as: for the latency source "solve", requests completing under 250ms are
// good, and the objective targets 99.9% good over the long window. The
// engine evaluates each objective from the source histogram's cumulative
// snapshot through three sliding windows (fast/slow/long, default 5m/1h/6h),
// computing per-window compliance and burn rate. Burn rate is the classic
// SRE ratio: (observed bad fraction) / (budgeted bad fraction) — 1.0 burns
// the error budget exactly at the sustainable pace, 14.4 exhausts a 30-day
// budget in two days. The fast-burn alarm uses the multi-window rule: both
// the fast and slow windows must exceed the threshold, which rejects
// short-lived blips without missing sustained burns.
//
// Evaluation is pull-driven (the /v1/slo endpoint and the Prometheus scrape
// path both call Eval), uses an injectable clock, and never blocks request
// paths: sources are read-time snapshot closures over histograms the request
// path already maintains.
package slo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/rankregret/rankregret/internal/obs"
)

// Objective is one declared latency SLO over a registered source histogram.
type Objective struct {
	// Name identifies the objective in metrics labels and JSON; derived
	// from the spec ("solve_p99") when parsed.
	Name string
	// Source names the histogram registered with Engine.Register ("solve").
	Source string
	// Spec is the original declaration string, kept for display.
	Spec string
	// Quantile is the percentile the spec bounds (0.99 for "p99") —
	// informational: the SLI is the good-event fraction below Threshold.
	Quantile float64
	// ThresholdSeconds is the latency bound separating good from bad.
	ThresholdSeconds float64
	// Target is the required good fraction (0.999 for "@99.9").
	Target float64
}

// ParseObjective parses a spec of the form "source:pQQ<DUR@TT", e.g.
// "solve:p99<250ms@99.9" or "scrape:p99.9<50ms@99".
func ParseObjective(spec string) (Objective, error) {
	fail := func(why string) (Objective, error) {
		return Objective{}, fmt.Errorf("slo: bad spec %q: %s (want e.g. \"solve:p99<250ms@99.9\")", spec, why)
	}
	src, rest, ok := strings.Cut(spec, ":")
	if !ok || src == "" {
		return fail("missing source prefix")
	}
	qs, rest, ok := strings.Cut(rest, "<")
	if !ok || !strings.HasPrefix(qs, "p") {
		return fail("missing pNN< quantile")
	}
	q, err := strconv.ParseFloat(strings.TrimPrefix(qs, "p"), 64)
	if err != nil || q <= 0 || q >= 100 {
		return fail("quantile must be in (0, 100)")
	}
	ds, ts, ok := strings.Cut(rest, "@")
	if !ok {
		return fail("missing @target")
	}
	d, err := time.ParseDuration(ds)
	if err != nil || d <= 0 {
		return fail("threshold must be a positive duration")
	}
	tgt, err := strconv.ParseFloat(ts, 64)
	if err != nil || tgt <= 0 || tgt >= 100 {
		return fail("target percent must be in (0, 100)")
	}
	name := src + "_" + strings.ReplaceAll(qs, ".", "_")
	return Objective{
		Name:             name,
		Source:           src,
		Spec:             spec,
		Quantile:         q / 100,
		ThresholdSeconds: d.Seconds(),
		Target:           tgt / 100,
	}, nil
}

// DefaultObjectives are the stock objectives rrmd ships with; each is
// replaced wholesale when the operator declares any objective for the same
// source.
func DefaultObjectives() []Objective {
	specs := []string{
		"solve:p99<250ms@99.9",
		"mutate:p99<100ms@99.9",
		"scrape:p99<50ms@99",
	}
	out := make([]Objective, 0, len(specs))
	for _, s := range specs {
		o, err := ParseObjective(s)
		if err != nil {
			panic(err) // static specs; unreachable
		}
		out = append(out, o)
	}
	return out
}

// WindowStatus is one sliding window's view of an objective.
type WindowStatus struct {
	Window     string  `json:"window"`
	Good       uint64  `json:"good"`
	Total      uint64  `json:"total"`
	Compliance float64 `json:"compliance"`
	BurnRate   float64 `json:"burn_rate"`
}

// Status is the evaluated state of one objective, the JSON shape served at
// /v1/slo and the source of the rrmd_slo_* gauges.
type Status struct {
	Name                 string         `json:"name"`
	Source               string         `json:"source"`
	Spec                 string         `json:"spec"`
	Target               float64        `json:"target"`
	ThresholdSeconds     float64        `json:"threshold_seconds"`
	EffThresholdSeconds  float64        `json:"effective_threshold_seconds"`
	Compliance           float64        `json:"compliance"`
	ErrorBudgetRemaining float64        `json:"error_budget_remaining"`
	BurnRateFast         float64        `json:"burn_rate_fast"`
	BurnRateSlow         float64        `json:"burn_rate_slow"`
	FastBurnAlarm        bool           `json:"fast_burn_alarm"`
	Windows              []WindowStatus `json:"windows"`
}

// Config tunes an Engine. Zero values select production defaults.
type Config struct {
	// Now is the clock (nil = time.Now); injectable for deterministic tests.
	Now func() time.Time
	// FastWindow/SlowWindow/LongWindow are the sliding windows
	// (0 = 5m / 1h / 6h). Compliance and budget are reported over Long.
	FastWindow time.Duration
	SlowWindow time.Duration
	LongWindow time.Duration
	// FastBurnThreshold is the burn rate that, sustained across the fast
	// AND slow windows, raises the alarm (0 = 14.4: a 30-day budget gone
	// in two days).
	FastBurnThreshold float64
	// MinEvents guards the alarm against tiny samples: the fast window
	// must contain at least this many events (0 = 10).
	MinEvents uint64
	// Registry, when set, receives the rrmd_slo_* gauge families.
	Registry *obs.Registry
	// OnFastBurn fires once per alarm rising edge (not per Eval while the
	// alarm stays raised). Called synchronously from Eval.
	OnFastBurn func(Status)
}

type sample struct {
	t           time.Time
	good, total uint64
}

type objState struct {
	obj     Objective
	src     func() obs.HistogramSnapshot
	samples []sample
	alarmed bool
}

// Engine evaluates declared objectives against registered sources.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	sources map[string]func() obs.HistogramSnapshot
	objs    []*objState

	gTarget, gCompliance, gBudget *obs.GaugeVec
	gBurnFast, gBurnSlow, gAlarm  *obs.GaugeVec
}

// New builds an engine over cfg, registering the rrmd_slo_* gauge families
// when cfg.Registry is set.
func New(cfg Config) *Engine {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = 5 * time.Minute
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = time.Hour
	}
	if cfg.LongWindow <= 0 {
		cfg.LongWindow = 6 * time.Hour
	}
	if cfg.FastBurnThreshold <= 0 {
		cfg.FastBurnThreshold = 14.4
	}
	if cfg.MinEvents == 0 {
		cfg.MinEvents = 10
	}
	e := &Engine{cfg: cfg, sources: make(map[string]func() obs.HistogramSnapshot)}
	if r := cfg.Registry; r != nil {
		e.gTarget = r.GaugeVec("rrmd_slo_target", "Declared SLO target (good-event fraction).", "objective")
		e.gCompliance = r.GaugeVec("rrmd_slo_compliance", "Good-event fraction over the long window.", "objective")
		e.gBudget = r.GaugeVec("rrmd_slo_error_budget_remaining", "Fraction of the long-window error budget still unspent (negative when overspent).", "objective")
		e.gBurnFast = r.GaugeVec("rrmd_slo_burn_rate_fast", "Error-budget burn rate over the fast window (1.0 = sustainable pace).", "objective")
		e.gBurnSlow = r.GaugeVec("rrmd_slo_burn_rate_slow", "Error-budget burn rate over the slow window.", "objective")
		e.gAlarm = r.GaugeVec("rrmd_slo_fast_burn_alarm", "1 while the multi-window fast-burn alarm is raised.", "objective")
	}
	return e
}

// Register names a latency source — a read-time snapshot closure over the
// histogram the request path maintains. Objectives reference sources by name.
func (e *Engine) Register(source string, fn func() obs.HistogramSnapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sources[source] = fn
}

// Add declares an objective. The source must already be registered.
func (e *Engine) Add(o Objective) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	src, ok := e.sources[o.Source]
	if !ok {
		known := make([]string, 0, len(e.sources))
		for k := range e.sources {
			known = append(known, k)
		}
		sort.Strings(known)
		return fmt.Errorf("slo: objective %q references unknown source %q (have %s)",
			o.Spec, o.Source, strings.Join(known, ", "))
	}
	for _, st := range e.objs {
		if st.obj.Name == o.Name {
			return fmt.Errorf("slo: duplicate objective %q", o.Name)
		}
	}
	e.objs = append(e.objs, &objState{obj: o, src: src})
	if e.gTarget != nil {
		e.gTarget.With(o.Name).Set(o.Target)
	}
	return nil
}

// Objectives returns the declared objectives in declaration order.
func (e *Engine) Objectives() []Objective {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Objective, len(e.objs))
	for i, st := range e.objs {
		out[i] = st.obj
	}
	return out
}

// Eval evaluates every objective at the current clock reading, publishes the
// rrmd_slo_* gauges, fires OnFastBurn on alarm rising edges, and returns the
// statuses. The returned slice and the gauges are computed from the same
// snapshots, so JSON and Prometheus views taken through one Eval agree.
func (e *Engine) Eval() []Status {
	now := e.cfg.Now()
	e.mu.Lock()
	out := make([]Status, 0, len(e.objs))
	var fired []Status
	for _, st := range e.objs {
		s := e.evalOne(st, now)
		if s.FastBurnAlarm && !st.alarmed {
			fired = append(fired, s)
		}
		st.alarmed = s.FastBurnAlarm
		out = append(out, s)
	}
	e.mu.Unlock()
	// Fire outside the lock: the callback typically captures an incident,
	// which re-renders the registry (and so re-enters gauge reads).
	if e.cfg.OnFastBurn != nil {
		for _, s := range fired {
			e.cfg.OnFastBurn(s)
		}
	}
	return out
}

// evalOne evaluates a single objective; caller holds e.mu.
func (e *Engine) evalOne(st *objState, now time.Time) Status {
	snap := st.src()
	good, eff := goodCount(snap, st.obj.ThresholdSeconds)
	total := snap.Count
	st.samples = append(st.samples, sample{t: now, good: good, total: total})
	st.samples = prune(st.samples, now.Add(-e.cfg.LongWindow))

	s := Status{
		Name:                st.obj.Name,
		Source:              st.obj.Source,
		Spec:                st.obj.Spec,
		Target:              st.obj.Target,
		ThresholdSeconds:    st.obj.ThresholdSeconds,
		EffThresholdSeconds: eff,
	}
	windows := []struct {
		name string
		d    time.Duration
	}{
		{"fast", e.cfg.FastWindow},
		{"slow", e.cfg.SlowWindow},
		{"long", e.cfg.LongWindow},
	}
	var fastTotal uint64
	for _, w := range windows {
		base := baseline(st.samples, now.Add(-w.d))
		ws := WindowStatus{Window: w.name, Good: good - base.good, Total: total - base.total}
		ws.Compliance = 1.0
		if ws.Total > 0 {
			ws.Compliance = float64(ws.Good) / float64(ws.Total)
		}
		ws.BurnRate = (1 - ws.Compliance) / (1 - st.obj.Target)
		s.Windows = append(s.Windows, ws)
		switch w.name {
		case "fast":
			s.BurnRateFast = ws.BurnRate
			fastTotal = ws.Total
		case "slow":
			s.BurnRateSlow = ws.BurnRate
		case "long":
			s.Compliance = ws.Compliance
			s.ErrorBudgetRemaining = 1 - ws.BurnRate
		}
	}
	s.FastBurnAlarm = fastTotal >= e.cfg.MinEvents &&
		s.BurnRateFast >= e.cfg.FastBurnThreshold &&
		s.BurnRateSlow >= e.cfg.FastBurnThreshold

	if e.gCompliance != nil {
		e.gCompliance.With(s.Name).Set(s.Compliance)
		e.gBudget.With(s.Name).Set(s.ErrorBudgetRemaining)
		e.gBurnFast.With(s.Name).Set(s.BurnRateFast)
		e.gBurnSlow.With(s.Name).Set(s.BurnRateSlow)
		alarm := 0.0
		if s.FastBurnAlarm {
			alarm = 1
		}
		e.gAlarm.With(s.Name).Set(alarm)
	}
	return s
}

// goodCount counts events at or below the threshold by snapping it up to the
// histogram's bucket grid (the smallest bound >= threshold), returning the
// count and the effective (snapped) threshold. A threshold past the last
// bound counts every event as good and reports the raw threshold.
func goodCount(snap obs.HistogramSnapshot, threshold float64) (uint64, float64) {
	for i, b := range snap.Bounds {
		if threshold <= b && i < len(snap.Cumulative) {
			return snap.Cumulative[i], b
		}
	}
	return snap.Count, threshold
}

// baseline returns the newest sample at or before cutoff — the cumulative
// state a window's deltas are measured against. With no sample that old the
// window is partial and deltas are measured from zero (process start).
func baseline(samples []sample, cutoff time.Time) sample {
	var base sample
	for _, s := range samples {
		if s.t.After(cutoff) {
			break
		}
		base = s
	}
	return base
}

// prune drops samples older than cutoff, keeping the newest such sample as
// the long-window baseline anchor.
func prune(samples []sample, cutoff time.Time) []sample {
	keepFrom := 0
	for i, s := range samples {
		if s.t.After(cutoff) {
			break
		}
		keepFrom = i
	}
	if keepFrom == 0 {
		return samples
	}
	return append(samples[:0], samples[keepFrom:]...)
}
