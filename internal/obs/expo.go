package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type for the Prometheus text format.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families sorted by name and series by
// label value. Callback series (CounterFunc/GaugeFunc) are evaluated at
// write time, so the exposition reflects the owning subsystem's live state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.mu.Lock()
		series := append([]series(nil), f.series...)
		f.mu.Unlock()
		sort.Slice(series, func(i, j int) bool { return series[i].labelValue < series[j].labelValue })
		// Metadata is written even for a vec family with no series yet, so
		// every registered family is discoverable from the first scrape.
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range series {
			lbl := "" // rendered {name="value"} pair, empty when unlabeled
			if f.labelName != "" {
				lbl = fmt.Sprintf(`%s="%s"`, f.labelName, escapeLabel(s.labelValue))
			}
			switch {
			case s.hist != nil:
				writeHistogram(bw, f.name, lbl, s.hist.Snapshot())
			case s.histFn != nil:
				writeHistogram(bw, f.name, lbl, s.histFn())
			case s.counter != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, braced(lbl), s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, braced(lbl), fmtFloat(s.gauge.Value()))
			case s.fn != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, braced(lbl), fmtFloat(s.fn()))
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series from its snapshot. The +Inf
// bucket is always Count, so the parser's +Inf == _count invariant holds for
// callback-produced snapshots too.
func writeHistogram(bw *bufio.Writer, name, lbl string, snap HistogramSnapshot) {
	for i, ub := range snap.Bounds {
		if i >= len(snap.Cumulative) {
			break
		}
		fmt.Fprintf(bw, "%s_bucket{%s} %d\n", name,
			joinLabels(lbl, `le="`+fmtFloat(ub)+`"`), snap.Cumulative[i])
	}
	fmt.Fprintf(bw, "%s_bucket{%s} %d\n", name, joinLabels(lbl, `le="+Inf"`), snap.Count)
	fmt.Fprintf(bw, "%s_sum%s %s\n", name, braced(lbl), fmtFloat(snap.Sum))
	fmt.Fprintf(bw, "%s_count%s %d\n", name, braced(lbl), snap.Count)
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func braced(lbl string) string {
	if lbl == "" {
		return ""
	}
	return "{" + lbl + "}"
}

// Exposition is a parsed Prometheus text exposition: per-family metadata and
// every sample keyed by its full series name (base name + sorted label set as
// written).
type Exposition struct {
	Families map[string]*ExpoFamily
	// Samples maps "name{labels}" (labels exactly as exposed, including le)
	// to the parsed value.
	Samples map[string]float64
}

// ExpoFamily is the parsed metadata and samples of one metric family.
type ExpoFamily struct {
	Name string
	Help string
	Type string
	// Series maps the rendered label portion ("" for unlabeled) to value.
	// For histograms this holds _bucket/_sum/_count samples under their
	// suffixed names in Exposition.Samples instead.
	Series map[string]float64
}

// Value returns the sample for a full series key, e.g.
// Value(`rrmd_queue_wait_seconds_count`) or
// Value(`rrmd_solve_stage_duration_seconds_count{stage="solve"}`).
func (e *Exposition) Value(key string) (float64, bool) {
	v, ok := e.Samples[key]
	return v, ok
}

// baseFamily strips histogram sample suffixes to recover the declared family
// name.
func baseFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// ParseExposition parses and validates Prometheus text exposition format.
// Beyond syntax, it enforces the invariants the tests and the smoke scrape
// rely on:
//
//   - every sample belongs to a family with # TYPE (and # HELP) declared
//     before its first sample;
//   - histogram buckets are cumulative (non-decreasing in ascending le
//     order) and the +Inf bucket equals the _count sample;
//   - histogram families expose _sum and _count for every label set;
//   - counter and histogram _count/_bucket values are non-negative.
//
// It returns the parsed samples for value-level assertions.
func ParseExposition(rd io.Reader) (*Exposition, error) {
	exp := &Exposition{
		Families: make(map[string]*ExpoFamily),
		Samples:  make(map[string]float64),
	}
	// histogram bookkeeping: family -> labelset -> le -> value
	type histAcc struct {
		buckets map[string]map[string]float64
		sums    map[string]float64
		counts  map[string]float64
	}
	hists := make(map[string]*histAcc)

	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !validName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			fam := exp.Families[name]
			if fam == nil {
				fam = &ExpoFamily{Name: name, Series: make(map[string]float64)}
				exp.Families[name] = fam
			}
			switch fields[1] {
			case "HELP":
				if len(fields) == 4 {
					fam.Help = fields[3]
				}
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE without value", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q", lineNo, fields[3])
				}
				if fam.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				fam.Type = fields[3]
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		base := baseFamily(name)
		fam := exp.Families[base]
		if fam == nil || fam.Type == "" {
			// _sum/_count could also be a plain metric that happens to end
			// with the suffix; accept it if declared under its full name.
			if f2 := exp.Families[name]; f2 != nil && f2.Type != "" {
				fam, base = f2, name
			} else {
				return nil, fmt.Errorf("line %d: sample %q before # TYPE declaration", lineNo, name)
			}
		}
		key := name
		if labels != "" {
			key = name + "{" + labels + "}"
		}
		if _, dup := exp.Samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %q", lineNo, key)
		}
		exp.Samples[key] = value
		if base == name && fam.Type != "histogram" {
			fam.Series[labels] = value
			if fam.Type == "counter" && value < 0 {
				return nil, fmt.Errorf("line %d: negative counter %q", lineNo, key)
			}
		}
		if fam.Type == "histogram" {
			acc := hists[base]
			if acc == nil {
				acc = &histAcc{
					buckets: make(map[string]map[string]float64),
					sums:    make(map[string]float64),
					counts:  make(map[string]float64),
				}
				hists[base] = acc
			}
			switch {
			case name == base+"_bucket":
				le, rest, err := extractLE(labels)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo, err)
				}
				if value < 0 {
					return nil, fmt.Errorf("line %d: negative bucket %q", lineNo, key)
				}
				if acc.buckets[rest] == nil {
					acc.buckets[rest] = make(map[string]float64)
				}
				acc.buckets[rest][le] = value
			case name == base+"_sum":
				acc.sums[labels] = value
			case name == base+"_count":
				if value < 0 {
					return nil, fmt.Errorf("line %d: negative count %q", lineNo, key)
				}
				acc.counts[labels] = value
			default:
				return nil, fmt.Errorf("line %d: histogram family %q has non-histogram sample %q", lineNo, base, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Cross-sample histogram invariants.
	for fam, acc := range hists {
		for lbls, buckets := range acc.buckets {
			type bound struct {
				f float64
				s string
			}
			les := make([]bound, 0, len(buckets))
			hasInf := false
			for le := range buckets {
				if le == "+Inf" {
					hasInf = true
					continue
				}
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("histogram %s{%s}: bad le %q", fam, lbls, le)
				}
				les = append(les, bound{v, le})
			}
			if !hasInf {
				return nil, fmt.Errorf("histogram %s{%s}: missing +Inf bucket", fam, lbls)
			}
			sort.Slice(les, func(i, j int) bool { return les[i].f < les[j].f })
			prev := 0.0
			for _, le := range les {
				v := buckets[le.s]
				if v < prev {
					return nil, fmt.Errorf("histogram %s{%s}: bucket le=%s decreases (%g < %g)",
						fam, lbls, le.s, v, prev)
				}
				prev = v
			}
			inf := buckets["+Inf"]
			if inf < prev {
				return nil, fmt.Errorf("histogram %s{%s}: +Inf bucket %g below last bound %g", fam, lbls, inf, prev)
			}
			count, ok := acc.counts[lbls]
			if !ok {
				return nil, fmt.Errorf("histogram %s{%s}: missing _count", fam, lbls)
			}
			if _, ok := acc.sums[lbls]; !ok {
				return nil, fmt.Errorf("histogram %s{%s}: missing _sum", fam, lbls)
			}
			if inf != count {
				return nil, fmt.Errorf("histogram %s{%s}: +Inf bucket %g != _count %g", fam, lbls, inf, count)
			}
		}
	}
	return exp, nil
}

// parseSample splits a sample line into name, rendered labels (without
// braces, may be ""), and value. Timestamps are not supported (the registry
// never writes them).
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
		if err := checkLabels(labels); err != nil {
			return "", "", 0, err
		}
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid sample name %q", name)
	}
	rest = strings.TrimSpace(rest)
	if rest == "" || len(strings.Fields(rest)) != 1 {
		return "", "", 0, fmt.Errorf("malformed value in %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %v", rest, err)
	}
	return name, labels, v, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkLabels validates a rendered label set: comma-separated name="value"
// pairs with escaped quotes inside values.
func checkLabels(labels string) error {
	rest := labels
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 || !validName(strings.TrimSuffix(rest[:eq], " ")) {
			return fmt.Errorf("malformed label in %q", labels)
		}
		rest = rest[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", labels)
		}
		rest = rest[1:]
		// scan for the closing quote, honoring backslash escapes
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value in %q", labels)
		}
		rest = rest[end+1:]
		if rest == "" {
			break
		}
		if !strings.HasPrefix(rest, ",") {
			return fmt.Errorf("trailing garbage after label value in %q", labels)
		}
		rest = rest[1:]
	}
	return nil
}

// extractLE pulls the le label out of a rendered bucket label set, returning
// the le value and the remaining labels (sorted order preserved).
func extractLE(labels string) (le, rest string, err error) {
	parts := splitLabels(labels)
	kept := make([]string, 0, len(parts))
	for _, p := range parts {
		if strings.HasPrefix(p, `le="`) && strings.HasSuffix(p, `"`) {
			le = strings.TrimSuffix(strings.TrimPrefix(p, `le="`), `"`)
			continue
		}
		kept = append(kept, p)
	}
	if le == "" {
		return "", "", fmt.Errorf("bucket sample missing le label in %q", labels)
	}
	return le, strings.Join(kept, ","), nil
}

// splitLabels splits a rendered label set on commas outside quoted values.
func splitLabels(labels string) []string {
	var parts []string
	start, inQ := 0, false
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			if inQ {
				i++
			}
		case '"':
			inQ = !inQ
		case ',':
			if !inQ {
				parts = append(parts, labels[start:i])
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		parts = append(parts, labels[start:])
	}
	return parts
}
