package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"
)

// Incident is one captured anomaly bundle: the evidence a post-mortem needs,
// frozen at the moment the trigger fired — the request trace (when the
// trigger had one), a goroutine profile, the full metrics exposition, and
// the most recent log records.
type Incident struct {
	ID        string    `json:"id"`
	Time      time.Time `json:"time"`
	Trigger   string    `json:"trigger"`
	Detail    string    `json:"detail"`
	RequestID string    `json:"request_id,omitempty"`

	Trace      *TraceSnapshot `json:"trace,omitempty"`
	Goroutines string         `json:"goroutines,omitempty"`
	Metrics    string         `json:"metrics,omitempty"`
	Logs       []LogRecord    `json:"logs,omitempty"`
}

// RecorderConfig configures a flight Recorder.
type RecorderConfig struct {
	// Capacity bounds the in-memory incident ring (0 = 32).
	Capacity int
	// Dir, when non-empty, receives each bundle as incident-<id>.json so
	// post-mortems survive a crash or restart. Write failures are logged
	// and otherwise ignored — capture must never take the server down.
	Dir string
	// MinGap rate-limits captures per trigger kind (0 = 1s): an anomaly
	// storm — every request slow during a GC stall — yields one bundle per
	// gap, not one per request.
	MinGap time.Duration
	// Registry, when set, is rendered into each bundle's Metrics snapshot.
	Registry *Registry
	// LogRing, when set, supplies each bundle's recent log records.
	LogRing *LogRing
	// LogTail is how many records a bundle carries (0 = 64).
	LogTail int
	// Logger receives capture/dump diagnostics (nil = discard).
	Logger *slog.Logger
}

// Recorder is the anomaly flight recorder: a bounded ring of incident
// bundles captured on anomaly triggers (slow request, SLO fast burn, store
// health transition). Safe for concurrent use; Capture is designed to be
// called from request paths, so it is rate-limited per trigger and never
// blocks on disk (directory dumps happen inline but only within the rate
// limit).
type Recorder struct {
	cfg RecorderConfig

	mu    sync.Mutex
	seq   uint64
	buf   []*Incident
	next  int
	n     int
	byID  map[string]*Incident
	last  map[string]time.Time // trigger -> last capture time
	drops uint64
}

// NewRecorder returns a flight recorder over cfg.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Capacity < 1 {
		cfg.Capacity = 32
	}
	if cfg.MinGap <= 0 {
		cfg.MinGap = time.Second
	}
	if cfg.LogTail <= 0 {
		cfg.LogTail = 64
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	return &Recorder{
		cfg:  cfg,
		buf:  make([]*Incident, cfg.Capacity),
		byID: make(map[string]*Incident),
		last: make(map[string]time.Time),
	}
}

// Capture records one incident bundle for trigger, attaching tr's snapshot
// when non-nil. It returns the captured incident, or nil when the trigger is
// inside its rate-limit gap. The goroutine profile and metrics snapshot are
// taken at call time, so the bundle reflects the server at the anomaly, not
// at retrieval.
func (r *Recorder) Capture(trigger, detail string, tr *Trace) *Incident {
	now := time.Now()
	r.mu.Lock()
	if last, ok := r.last[trigger]; ok && now.Sub(last) < r.cfg.MinGap {
		r.drops++
		r.mu.Unlock()
		return nil
	}
	r.last[trigger] = now
	r.seq++
	inc := &Incident{
		ID:      fmt.Sprintf("inc-%06d", r.seq),
		Time:    now,
		Trigger: trigger,
		Detail:  detail,
	}
	r.mu.Unlock()

	if tr != nil {
		snap := tr.Snapshot()
		inc.Trace = &snap
		inc.RequestID = snap.ID
	}
	inc.Goroutines = goroutineProfile()
	if r.cfg.Registry != nil {
		var buf bytes.Buffer
		if err := r.cfg.Registry.WritePrometheus(&buf); err == nil {
			inc.Metrics = buf.String()
		}
	}
	if r.cfg.LogRing != nil {
		inc.Logs = r.cfg.LogRing.Recent(r.cfg.LogTail)
	}

	r.mu.Lock()
	if old := r.buf[r.next]; old != nil && r.byID[old.ID] == old {
		delete(r.byID, old.ID)
	}
	r.buf[r.next] = inc
	r.byID[inc.ID] = inc
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()

	r.cfg.Logger.Warn("incident captured",
		"incident", inc.ID, "trigger", trigger, "detail", detail, "request_id", inc.RequestID)
	r.dump(inc)
	return inc
}

// dump persists a bundle to the incident directory, when configured.
func (r *Recorder) dump(inc *Incident) {
	if r.cfg.Dir == "" {
		return
	}
	b, err := json.MarshalIndent(inc, "", "  ")
	if err == nil {
		err = os.WriteFile(filepath.Join(r.cfg.Dir, inc.ID+".json"), b, 0o644)
	}
	if err != nil {
		r.cfg.Logger.Error("incident dump failed", "incident", inc.ID, "err", err)
	}
}

// Get returns the retained incident with the given id.
func (r *Recorder) Get(id string) (*Incident, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	inc, ok := r.byID[id]
	return inc, ok
}

// Recent returns up to n incidents, newest first.
func (r *Recorder) Recent(n int) []*Incident {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]*Incident, 0, n)
	for i := 0; i < r.n && len(out) < n; i++ {
		idx := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		if inc := r.buf[idx]; inc != nil {
			out = append(out, inc)
		}
	}
	return out
}

// Len reports how many incidents the ring currently holds.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped reports how many captures the per-trigger rate limit suppressed.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drops
}

// goroutineProfile renders the textual goroutine profile (debug=1: one stack
// per unique goroutine state with counts) — compact enough for a JSON bundle
// and exactly what a deadlock or leak post-mortem reads first.
func goroutineProfile() string {
	p := pprof.Lookup("goroutine")
	if p == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return ""
	}
	return buf.String()
}
