package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"
)

func TestLogRingEvictionOrder(t *testing.T) {
	r := NewLogRing(3)
	for i := 0; i < 5; i++ {
		r.Append(LogRecord{Msg: fmt.Sprintf("m%d", i)})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	got := r.Recent(0)
	if len(got) != 3 || got[0].Msg != "m2" || got[1].Msg != "m3" || got[2].Msg != "m4" {
		t.Fatalf("recent = %+v, want oldest-first m2 m3 m4", got)
	}
	// A bounded tail keeps the newest records, still chronological.
	got = r.Recent(2)
	if len(got) != 2 || got[0].Msg != "m3" || got[1].Msg != "m4" {
		t.Fatalf("recent(2) = %+v, want m3 m4", got)
	}
}

func TestNewLoggerJSONAndRingTee(t *testing.T) {
	ring := NewLogRing(8)
	var buf bytes.Buffer
	logger := NewLogger(&buf, "json", slog.LevelInfo, ring)

	logger.Debug("dropped")                   // below level: neither output nor ring
	logger.With("request_id", "abc123").Warn( // With-bound attrs must reach the ring
		"slow request", "total_ms", 42)

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("output is not one JSON object per line: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "slow request" || rec["request_id"] != "abc123" {
		t.Fatalf("json record = %v", rec)
	}

	recs := ring.Recent(0)
	if len(recs) != 1 {
		t.Fatalf("ring holds %d records, want 1 (Debug below level must not tee)", len(recs))
	}
	lr := recs[0]
	if lr.Level != "WARN" || lr.Msg != "slow request" {
		t.Fatalf("ring record = %+v", lr)
	}
	if lr.Attrs["request_id"] != "abc123" || lr.Attrs["total_ms"] != "42" {
		t.Fatalf("ring attrs lost With-bound or inline attrs: %v", lr.Attrs)
	}
}

func TestNewLoggerTextFormat(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, "text", slog.LevelInfo, nil)
	logger.Info("hello", "k", "v")
	out := buf.String()
	if !strings.Contains(out, "msg=hello") || !strings.Contains(out, "k=v") {
		t.Fatalf("text output = %q", out)
	}
	if strings.HasPrefix(strings.TrimSpace(out), "{") {
		t.Fatalf("text format produced JSON: %q", out)
	}
}
