package obs

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"time"
)

// LogRecord is one captured log line in the flight-recorder ring: the
// flattened, stringified form of an slog record, cheap to retain and to
// serialize into an incident bundle.
type LogRecord struct {
	Time  time.Time         `json:"time"`
	Level string            `json:"level"`
	Msg   string            `json:"msg"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// LogRing is a bounded ring of recent log records. Every record the daemon
// emits passes through it (see NewLogger), so an incident bundle can carry
// the log context leading up to the anomaly without the daemon retaining
// unbounded history.
type LogRing struct {
	mu   sync.Mutex
	buf  []LogRecord
	next int
	n    int
}

// NewLogRing returns a ring holding up to capacity records (minimum 1).
func NewLogRing(capacity int) *LogRing {
	if capacity < 1 {
		capacity = 1
	}
	return &LogRing{buf: make([]LogRecord, capacity)}
}

// Append records rec, evicting the oldest when full.
func (r *LogRing) Append(rec LogRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Recent returns up to n records in chronological order (oldest first), the
// shape a post-mortem reads top to bottom.
func (r *LogRing) Recent(n int) []LogRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]LogRecord, 0, n)
	for i := r.n - n; i < r.n; i++ {
		out = append(out, r.buf[(r.next-r.n+i+2*len(r.buf))%len(r.buf)])
	}
	return out
}

// Len reports how many records the ring currently holds.
func (r *LogRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// ringHandler tees every record into a LogRing on its way to the inner
// handler, carrying the attrs bound by With so ring records are complete.
type ringHandler struct {
	inner slog.Handler
	ring  *LogRing
	attrs []slog.Attr
}

func (h *ringHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.inner.Enabled(ctx, lvl)
}

func (h *ringHandler) Handle(ctx context.Context, rec slog.Record) error {
	lr := LogRecord{Time: rec.Time, Level: rec.Level.String(), Msg: rec.Message}
	if len(h.attrs) > 0 || rec.NumAttrs() > 0 {
		lr.Attrs = make(map[string]string, len(h.attrs)+rec.NumAttrs())
		for _, a := range h.attrs {
			lr.Attrs[a.Key] = a.Value.String()
		}
		rec.Attrs(func(a slog.Attr) bool {
			lr.Attrs[a.Key] = a.Value.String()
			return true
		})
	}
	h.ring.Append(lr)
	return h.inner.Handle(ctx, rec)
}

func (h *ringHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := append(append([]slog.Attr{}, h.attrs...), attrs...)
	return &ringHandler{inner: h.inner.WithAttrs(attrs), ring: h.ring, attrs: merged}
}

func (h *ringHandler) WithGroup(name string) slog.Handler {
	// Groups are flattened in the ring copy; the inner handler keeps them.
	return &ringHandler{inner: h.inner.WithGroup(name), ring: h.ring, attrs: h.attrs}
}

// NewLogger builds the daemon's shared structured logger: format "json"
// selects JSON records (one object per line, machine-parseable), anything
// else the human-readable text handler. When ring is non-nil every record is
// also retained there for incident bundles.
func NewLogger(w io.Writer, format string, level slog.Leveler, ring *LogRing) *slog.Logger {
	var h slog.Handler
	opts := &slog.HandlerOptions{Level: level}
	if format == "json" {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	if ring != nil {
		h = &ringHandler{inner: h, ring: ring}
	}
	return slog.New(h)
}
