// Package obstest holds shared test helpers for observability-sensitive
// tests: a goroutine-leak check with stack dumps on failure, and an slog
// adapter over testing.TB.
package obstest

import (
	"context"
	"log/slog"
	"runtime"
	"testing"
	"time"
)

// ExpectNoGoroutineLeak snapshots the live goroutine count and registers a
// cleanup that, after the test body (and any cleanups registered later) have
// run, polls for the count to return to within slack of the baseline. On
// timeout it fails the test with a full stack dump of every goroutine, which
// is the evidence needed to find the leaker.
//
// Call it first in the test so its cleanup runs last (cleanups run LIFO):
// servers and stores shut down by later-registered cleanups must already be
// closed when the check runs.
func ExpectNoGoroutineLeak(t testing.TB, slack int) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= before+slack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutines leaked: %d -> %d (slack %d)\n%s", before, n, slack, buf)
	})
}

// Logger returns a structured logger that writes through t.Logf, so daemon
// log records interleave with test output and surface only on failure.
func Logger(t testing.TB) *slog.Logger {
	return slog.New(&tbHandler{t: t})
}

type tbHandler struct {
	t     testing.TB
	attrs []slog.Attr
}

func (h *tbHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *tbHandler) Handle(_ context.Context, rec slog.Record) error {
	line := rec.Level.String() + " " + rec.Message
	for _, a := range h.attrs {
		line += " " + a.Key + "=" + a.Value.String()
	}
	rec.Attrs(func(a slog.Attr) bool {
		line += " " + a.Key + "=" + a.Value.String()
		return true
	})
	h.t.Log(line)
	return nil
}

func (h *tbHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &tbHandler{t: h.t, attrs: append(append([]slog.Attr{}, h.attrs...), attrs...)}
}

func (h *tbHandler) WithGroup(string) slog.Handler { return h }
