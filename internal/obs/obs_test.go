package obs

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	want := []uint64{2, 3, 4, 5} // cumulative per bound, then +Inf
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (all %v)", i, s.Cumulative[i], w, s.Cumulative)
		}
	}
	if math.Abs(s.Sum-2.565) > 1e-9 {
		t.Fatalf("sum = %g, want 2.565", s.Sum)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "Operations.")
	c.Add(7)
	reg.GaugeFunc("test_depth", "Depth.", func() float64 { return 3 })
	reg.CounterFunc("test_seen_total", "Seen.", func() float64 { return 41 })
	h := reg.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	hv := reg.HistogramVec("test_stage_seconds", "Stage latency.", "stage", []float64{0.5})
	hv.With("solve").Observe(0.1)
	hv.With("cache").Observe(2)
	cv := reg.CounterVec("test_kind_total", "By kind.", "kind")
	cv.With("a").Inc()
	cv.With("a").Inc()
	cv.With("b").Inc()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP test_ops_total Operations.",
		"# TYPE test_ops_total counter",
		"test_ops_total 7",
		"test_depth 3",
		"test_seen_total 41",
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_count 3",
		`test_stage_seconds_bucket{stage="solve",le="0.5"} 1`,
		`test_kind_total{kind="a"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	exp, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if v, ok := exp.Value("test_ops_total"); !ok || v != 7 {
		t.Fatalf("parsed test_ops_total = %v %v", v, ok)
	}
	if v, ok := exp.Value(`test_stage_seconds_count{stage="cache"}`); !ok || v != 1 {
		t.Fatalf("parsed stage count = %v %v", v, ok)
	}
	if f := exp.Families["test_latency_seconds"]; f == nil || f.Type != "histogram" {
		t.Fatalf("family metadata missing: %+v", f)
	}
}

func TestGaugeAndHistogramFuncRoundTrip(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_level", "Level.")
	g.Set(2.5)
	gv := reg.GaugeVec("test_ratio", "Ratio.", "objective")
	gv.With("solve_p99").Set(0.999)
	gv.With("mutate_p99").Set(-0.25) // gauges may go negative
	src := NewRegistry().Histogram("ignored", "x", []float64{0.1, 1})
	src.Observe(0.05)
	src.Observe(5)
	reg.HistogramFunc("test_fn_seconds", "Read-time histogram.", src.Snapshot)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict parse: %v\n%s", err, buf.String())
	}
	if v, ok := exp.Value("test_level"); !ok || v != 2.5 {
		t.Fatalf("gauge = %v %v", v, ok)
	}
	if v, ok := exp.Value(`test_ratio{objective="mutate_p99"}`); !ok || v != -0.25 {
		t.Fatalf("negative gauge vec = %v %v", v, ok)
	}
	if v, ok := exp.Value(`test_fn_seconds_bucket{le="+Inf"}`); !ok || v != 2 {
		t.Fatalf("histogram-func +Inf bucket = %v %v", v, ok)
	}
	if v, ok := exp.Value("test_fn_seconds_count"); !ok || v != 2 {
		t.Fatalf("histogram-func count = %v %v", v, ok)
	}
	if f := exp.Families["test_level"]; f == nil || f.Type != "gauge" {
		t.Fatalf("gauge family metadata: %+v", f)
	}

	// Setting the same vec label again updates in place (no new series).
	gv.With("solve_p99").Set(0.5)
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), `test_ratio{objective="solve_p99"}`); n != 1 {
		t.Fatalf("solve_p99 series appears %d times", n)
	}
}

func TestParseExpositionRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE": "foo_total 3\n",
		"broken bucket order": "# HELP h H\n# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 5` + "\n" + `h_bucket{le="1"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"inf/count mismatch": "# HELP h H\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 4` + "\nh_sum 1\nh_count 5\n",
		"missing sum": "# HELP h H\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_count 5\n",
		"garbage value":  "# HELP g G\n# TYPE g gauge\ng banana\n",
		"duplicate":      "# HELP g G\n# TYPE g gauge\ng 1\ng 2\n",
		"unclosed label": "# HELP g G\n# TYPE g gauge\ng{x=\"1 2\n",
		"bad type":       "# HELP g G\n# TYPE g zebra\ng 1\n",
		"negative count": "# HELP c C\n# TYPE c counter\nc -3\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse accepted invalid input:\n%s", name, in)
		}
	}
}

func TestParseExpositionAcceptsValidEdgeCases(t *testing.T) {
	in := "# HELP g Some gauge with words\n# TYPE g gauge\n" +
		`g{path="a\"b\\c"} 1.5e-3` + "\n\n" +
		"# TYPE plain untyped\nplain NaN\n"
	if _, err := ParseExposition(strings.NewReader(in)); err != nil {
		t.Fatalf("parse rejected valid input: %v", err)
	}
}

func TestRegistryConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "Ops.")
	h := reg.Histogram("lat_seconds", "Lat.", nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.01)
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseExposition(&buf); err != nil {
			t.Fatalf("scrape %d failed validation: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestTraceSelfTimes(t *testing.T) {
	tr := NewTrace("req1")
	endSolve := tr.Begin("solve")
	time.Sleep(20 * time.Millisecond)
	endBuild := tr.Begin("build")
	time.Sleep(20 * time.Millisecond)
	endBuild()
	time.Sleep(5 * time.Millisecond)
	endSolve()
	total := tr.Finish()

	snap := tr.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(snap.Spans))
	}
	var solve, build Span
	for _, s := range snap.Spans {
		switch s.Name {
		case "solve":
			solve = s
		case "build":
			build = s
		}
	}
	if build.SelfMS != build.DurMS {
		t.Fatalf("leaf self %v != dur %v", build.SelfMS, build.DurMS)
	}
	if solve.SelfMS >= solve.DurMS {
		t.Fatalf("parent self %v should exclude child time (dur %v)", solve.SelfMS, solve.DurMS)
	}
	sum := solve.SelfMS + build.SelfMS
	if math.Abs(sum-solve.DurMS) > 1 {
		t.Fatalf("self times %v do not sum to parent duration %v", sum, solve.DurMS)
	}
	if ms(total) < solve.DurMS {
		t.Fatalf("total %v below solve duration %v", ms(total), solve.DurMS)
	}
}

func TestTraceAddCountsAsChild(t *testing.T) {
	tr := NewTrace("req2")
	end := tr.Begin("outer")
	tr.Add("ext", time.Now().Add(-10*time.Millisecond), 10*time.Millisecond)
	time.Sleep(time.Millisecond)
	end()
	snap := tr.Snapshot()
	var outer Span
	for _, s := range snap.Spans {
		if s.Name == "outer" {
			outer = s
		}
	}
	if outer.SelfMS > outer.DurMS-9 {
		t.Fatalf("outer self %v should exclude the 10ms Add (dur %v)", outer.SelfMS, outer.DurMS)
	}
}

func TestTraceContextHelpers(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("TraceFrom on empty ctx should be nil")
	}
	end := StartSpan(context.Background(), "noop")
	end() // must not panic without a trace
	tr := NewTrace("x")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace did not round-trip through context")
	}
	done := StartSpan(ctx, "stage")
	done()
	if tr.SpanCount() != 1 {
		t.Fatalf("span count = %d, want 1", tr.SpanCount())
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	for _, id := range []string{"a", "b", "c", "d"} {
		r.Put(NewTrace(id))
	}
	if _, ok := r.Get("a"); ok {
		t.Fatal("oldest trace should be evicted")
	}
	if _, ok := r.Get("d"); !ok {
		t.Fatal("newest trace missing")
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	rec := r.Recent(2)
	if len(rec) != 2 || rec[0].ID() != "d" || rec[1].ID() != "c" {
		ids := make([]string, len(rec))
		for i, tr := range rec {
			ids[i] = tr.ID()
		}
		t.Fatalf("recent = %v, want [d c]", ids)
	}

	// Re-using an id shadows the older trace and survives its eviction.
	r2 := NewTraceRing(2)
	first := NewTrace("dup")
	second := NewTrace("dup")
	r2.Put(first)
	r2.Put(second)
	if got, _ := r2.Get("dup"); got != second {
		t.Fatal("lookup should return the newest trace for a reused id")
	}
	r2.Put(NewTrace("other")) // evicts first; "dup" must still resolve
	if got, ok := r2.Get("dup"); !ok || got != second {
		t.Fatal("reused id lost after evicting its older duplicate")
	}
}

// TestTraceRingEvictionOrder wraps the ring several times over: eviction
// must stay strictly FIFO and Recent must stay newest-first across wraps.
func TestTraceRingEvictionOrder(t *testing.T) {
	r := NewTraceRing(4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", r.Cap())
	}
	ids := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9"}
	for _, id := range ids {
		r.Put(NewTrace(id))
	}
	// Exactly the 4 newest survive; every older trace is evicted in order.
	for _, id := range ids[:6] {
		if _, ok := r.Get(id); ok {
			t.Fatalf("trace %s should have been evicted", id)
		}
	}
	for _, id := range ids[6:] {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("trace %s missing from ring", id)
		}
	}
	rec := r.Recent(0)
	want := []string{"t9", "t8", "t7", "t6"}
	if len(rec) != len(want) {
		t.Fatalf("recent len = %d, want %d", len(rec), len(want))
	}
	for i, w := range want {
		if rec[i].ID() != w {
			got := make([]string, len(rec))
			for j, tr := range rec {
				got[j] = tr.ID()
			}
			t.Fatalf("recent = %v, want %v", got, want)
		}
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b || len(a) != 16 {
		t.Fatalf("ids not unique or wrong length: %q %q", a, b)
	}
}
