package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one recorded stage of a request. Start is relative to the trace
// start. Self is Dur minus time spent in nested child spans, so summing Self
// across all spans of a finished trace approximates the end-to-end latency
// without double counting.
type Span struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
	SelfMS  float64 `json:"self_ms"`
}

// Trace is a per-request span timeline. A trace is minted at the HTTP edge,
// threaded through the stack via context, and recorded into by whichever
// goroutine currently owns the request — the scheduler hands a request from
// the accepting handler to a worker, so methods are mutex-guarded.
//
// Nested stages use Begin/end pairs; stages measured elsewhere (queue wait,
// which is observed by the dequeuing worker after the fact) are attached flat
// with Add.
type Trace struct {
	id    string
	start time.Time

	mu       sync.Mutex
	spans    []Span
	stack    []openSpan
	attrs    map[string]string
	total    time.Duration
	finished bool
}

type openSpan struct {
	name  string
	start time.Time
	child time.Duration // time covered by completed nested spans
}

// NewTrace starts a trace identified by id.
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the request id the trace was minted with.
func (t *Trace) ID() string { return t.id }

// Begin opens a span named name and returns the closure that ends it. Spans
// opened while another is open nest: the inner span's duration is subtracted
// from the outer span's self time.
func (t *Trace) Begin(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	t.mu.Lock()
	t.stack = append(t.stack, openSpan{name: name, start: start})
	t.mu.Unlock()
	return func() {
		end := time.Now()
		t.mu.Lock()
		defer t.mu.Unlock()
		// Pop the matching open span; tolerate out-of-order ends by
		// searching from the top.
		idx := -1
		for i := len(t.stack) - 1; i >= 0; i-- {
			if t.stack[i].name == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		os := t.stack[idx]
		t.stack = append(t.stack[:idx], t.stack[idx+1:]...)
		dur := end.Sub(os.start)
		if len(t.stack) > 0 {
			t.stack[len(t.stack)-1].child += dur
		}
		t.spans = append(t.spans, Span{
			Name:    name,
			StartMS: ms(os.start.Sub(t.start)),
			DurMS:   ms(dur),
			SelfMS:  ms(dur - os.child),
		})
	}
}

// Add attaches a completed span measured externally (e.g. queue wait,
// recorded by the worker from the enqueue timestamp). If a span is currently
// open on this trace, the added duration counts as its child time.
func (t *Trace) Add(name string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stack) > 0 {
		t.stack[len(t.stack)-1].child += dur
	}
	t.spans = append(t.spans, Span{
		Name:    name,
		StartMS: ms(start.Sub(t.start)),
		DurMS:   ms(dur),
		SelfMS:  ms(dur),
	})
}

// Finish seals the trace and returns the end-to-end duration. Safe to call
// once from the edge middleware; later Begin/Add calls are still recorded
// but the total no longer moves.
func (t *Trace) Finish() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.finished {
		t.total = time.Since(t.start)
		t.finished = true
	}
	return t.total
}

// Annotate attaches a key=value annotation to the trace — e.g. the dataset a
// solve touched — so logs, incident bundles, and the trace endpoint can
// correlate a request id with what it operated on. Later values win.
func (t *Trace) Annotate(key, value string) {
	if t == nil || key == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.attrs == nil {
		t.attrs = make(map[string]string)
	}
	t.attrs[key] = value
}

// Annotation returns one annotation's value ("" when unset).
func (t *Trace) Annotation(key string) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attrs[key]
}

// SpanCount reports how many spans have been recorded.
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// TraceSnapshot is the JSON shape served at /v1/trace/{id}.
type TraceSnapshot struct {
	ID       string            `json:"id"`
	Started  time.Time         `json:"started"`
	TotalMS  float64           `json:"total_ms"`
	Finished bool              `json:"finished"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Spans    []Span            `json:"spans"`
}

// Snapshot returns a copy of the trace state, spans sorted by start time.
func (t *Trace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := append([]Span(nil), t.spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartMS < spans[j].StartMS })
	total := t.total
	if !t.finished {
		total = time.Since(t.start)
	}
	var attrs map[string]string
	if len(t.attrs) > 0 {
		attrs = make(map[string]string, len(t.attrs))
		for k, v := range t.attrs {
			attrs[k] = v
		}
	}
	return TraceSnapshot{
		ID:       t.id,
		Started:  t.start,
		TotalMS:  ms(total),
		Finished: t.finished,
		Attrs:    attrs,
		Spans:    spans,
	}
}

// Breakdown renders the span timeline as one log-friendly line:
// "queue=1.2ms cache=0.1ms solve=182.4ms" in start order, using self times.
func (t *Trace) Breakdown() string {
	snap := t.Snapshot()
	parts := make([]string, 0, len(snap.Spans))
	for _, s := range snap.Spans {
		parts = append(parts, fmt.Sprintf("%s=%.2fms", s.Name, s.SelfMS))
	}
	return strings.Join(parts, " ")
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

type ctxKey struct{}

// WithTrace returns a context carrying tr.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// TraceFrom returns the trace carried by ctx, or nil. All Trace methods are
// nil-safe, so callers can record unconditionally.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// StartSpan opens a span on the context's trace (no-op without one) and
// returns the closure that ends it.
func StartSpan(ctx context.Context, name string) func() {
	return TraceFrom(ctx).Begin(name)
}

// NewRequestID mints a 16-hex-char random request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a time-derived id; uniqueness is best-effort here.
		return fmt.Sprintf("t%015x", time.Now().UnixNano()&0x7fffffffffffffff)
	}
	return hex.EncodeToString(b[:])
}

// TraceRing is a bounded ring of recent traces with by-id lookup. Putting a
// trace past capacity evicts the oldest; re-using a request id shadows the
// older trace in lookups until it is evicted.
type TraceRing struct {
	mu   sync.Mutex
	cap  int
	buf  []*Trace
	next int
	byID map[string]*Trace
}

// NewTraceRing returns a ring holding up to capacity traces (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{cap: capacity, buf: make([]*Trace, capacity), byID: make(map[string]*Trace)}
}

// Put records a finished trace, evicting the oldest when full.
func (r *TraceRing) Put(tr *Trace) {
	if tr == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.buf[r.next]; old != nil && r.byID[old.id] == old {
		delete(r.byID, old.id)
	}
	r.buf[r.next] = tr
	r.byID[tr.id] = tr
	r.next = (r.next + 1) % r.cap
}

// Get returns the most recent trace recorded under id.
func (r *TraceRing) Get(id string) (*Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tr, ok := r.byID[id]
	return tr, ok
}

// Recent returns up to n traces, newest first.
func (r *TraceRing) Recent(n int) []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.cap {
		n = r.cap
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < r.cap && len(out) < n; i++ {
		idx := (r.next - 1 - i + 2*r.cap) % r.cap
		if tr := r.buf[idx]; tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// Cap reports how many traces the ring can hold.
func (r *TraceRing) Cap() int { return r.cap }

// Len reports how many traces the ring currently holds.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, tr := range r.buf {
		if tr != nil {
			n++
		}
	}
	return n
}
