package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRecorderCaptureBundle(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fr_test_ops_total", "Ops.").Add(3)
	ring := NewLogRing(8)
	ring.Append(LogRecord{Msg: "context line"})
	dir := t.TempDir()

	rec := NewRecorder(RecorderConfig{Capacity: 4, Dir: dir, Registry: reg, LogRing: ring})
	tr := NewTrace("req-42")
	tr.Annotate("dataset", "island")
	end := tr.Begin("solve")
	end()
	tr.Finish()

	inc := rec.Capture("slow_request", "solve took 2s", tr)
	if inc == nil {
		t.Fatal("first capture rate-limited")
	}
	if inc.ID != "inc-000001" || inc.Trigger != "slow_request" {
		t.Fatalf("incident header = %+v", inc)
	}
	if inc.RequestID != "req-42" || inc.Trace == nil || inc.Trace.Attrs["dataset"] != "island" {
		t.Fatalf("trace not attached: %+v", inc)
	}
	if !strings.Contains(inc.Goroutines, "goroutine profile:") {
		t.Fatalf("goroutine profile missing: %q", inc.Goroutines[:min(len(inc.Goroutines), 80)])
	}
	if !strings.Contains(inc.Metrics, "fr_test_ops_total 3") {
		t.Fatalf("metrics snapshot missing counter:\n%s", inc.Metrics)
	}
	if len(inc.Logs) != 1 || inc.Logs[0].Msg != "context line" {
		t.Fatalf("log tail = %+v", inc.Logs)
	}

	// The bundle also lands on disk, as valid JSON round-tripping to the
	// same incident.
	b, err := os.ReadFile(filepath.Join(dir, inc.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var onDisk Incident
	if err := json.Unmarshal(b, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.ID != inc.ID || onDisk.RequestID != "req-42" || onDisk.Trace == nil {
		t.Fatalf("dumped bundle = %+v", onDisk)
	}

	got, ok := rec.Get(inc.ID)
	if !ok || got != inc {
		t.Fatal("Get did not return the retained incident")
	}
}

func TestRecorderRateLimitPerTrigger(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Capacity: 8, MinGap: time.Hour})
	if rec.Capture("slow_request", "a", nil) == nil {
		t.Fatal("first capture suppressed")
	}
	if rec.Capture("slow_request", "b", nil) != nil {
		t.Fatal("second capture inside the gap not suppressed")
	}
	// A different trigger has its own gap.
	if rec.Capture("store_health", "degraded", nil) == nil {
		t.Fatal("distinct trigger suppressed by another trigger's gap")
	}
	if rec.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", rec.Dropped())
	}
	if rec.Len() != 2 {
		t.Fatalf("len = %d, want 2", rec.Len())
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Capacity: 2, MinGap: time.Nanosecond})
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		inc := rec.Capture("slow_request", "x", nil)
		if inc == nil {
			t.Fatalf("capture %d suppressed", i)
		}
		ids = append(ids, inc.ID)
		time.Sleep(time.Millisecond) // clear the (nanosecond) gap
	}
	if _, ok := rec.Get(ids[0]); ok {
		t.Fatal("oldest incident should be evicted")
	}
	recents := rec.Recent(0)
	if len(recents) != 2 || recents[0].ID != ids[2] || recents[1].ID != ids[1] {
		t.Fatalf("recent order wrong: %v %v", recents[0].ID, recents[1].ID)
	}
}
