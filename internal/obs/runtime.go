package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// runtimeBuckets is the fixed exposition layout runtime histograms are
// folded into: the Go runtime's native bucket boundaries number in the
// hundreds and differ across Go versions, which would bloat every scrape and
// make dashboards version-dependent. Sub-10µs through 1s, log-spaced.
var runtimeBuckets = []float64{
	0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1,
}

// RegisterRuntime registers the Go runtime telemetry families (rrmd_go_*)
// into reg: heap live/goal gauges, goroutine and GOMAXPROCS gauges, the GC
// cycle counter, and the GC-pause / scheduler-latency distributions folded
// into a fixed bucket layout. Every series reads runtime/metrics at scrape
// time, so the exposition is always current and costs nothing between
// scrapes. Metrics the running Go version does not provide are skipped.
func RegisterRuntime(reg *Registry) {
	reg.GaugeFunc("rrmd_go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("rrmd_go_gomaxprocs", "GOMAXPROCS: the scheduler's parallel-execution bound.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })

	gauges := []struct {
		name, help, sample string
	}{
		{"rrmd_go_heap_live_bytes", "Heap memory occupied by live objects after the last GC.", "/gc/heap/live:bytes"},
		{"rrmd_go_heap_goal_bytes", "Heap size target of the current GC cycle.", "/gc/heap/goal:bytes"},
		{"rrmd_go_mem_total_bytes", "Total memory mapped by the Go runtime.", "/memory/classes/total:bytes"},
	}
	for _, g := range gauges {
		if name := g.sample; sampleKind(name) == metrics.KindUint64 {
			reg.GaugeFunc(g.name, g.help, func() float64 { return readUint64(name) })
		}
	}
	if sampleKind("/gc/cycles/total:gc-cycles") == metrics.KindUint64 {
		reg.CounterFunc("rrmd_go_gc_cycles_total", "Completed GC cycles.",
			func() float64 { return readUint64("/gc/cycles/total:gc-cycles") })
	}

	hists := []struct {
		name, help, sample string
	}{
		{"rrmd_go_gc_pause_seconds", "Distribution of stop-the-world GC pause latencies.", "/sched/pauses/total/gc:seconds"},
		{"rrmd_go_sched_latency_seconds", "Distribution of goroutine scheduling latencies (runnable to running).", "/sched/latencies:seconds"},
	}
	for _, h := range hists {
		if name := h.sample; sampleKind(name) == metrics.KindFloat64Histogram {
			reg.HistogramFunc(h.name, h.help, func() HistogramSnapshot { return readHistogram(name) })
		}
	}
}

// sampleKind probes whether the running Go version provides a runtime metric
// and with what kind.
func sampleKind(name string) metrics.ValueKind {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	return s[0].Value.Kind()
}

func readUint64(name string) float64 {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return float64(s[0].Value.Uint64())
}

// readHistogram folds a runtime Float64Histogram into the fixed exposition
// layout. Each runtime bucket's count lands in the smallest exposition bound
// at or above its upper boundary (+Inf past the last); the sum is estimated
// from bucket midpoints, which the strict parser accepts (it checks _sum
// presence and bucket coherence, not the unknowable exact sum).
func readHistogram(name string) HistogramSnapshot {
	snap := HistogramSnapshot{Bounds: runtimeBuckets, Cumulative: make([]uint64, len(runtimeBuckets))}
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindFloat64Histogram {
		return snap
	}
	h := s[0].Value.Float64Histogram()
	perBound := make([]uint64, len(runtimeBuckets))
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		// Place by upper boundary: conservative (never reports a latency as
		// faster than it was) and keeps cumulative counts coherent.
		j := len(runtimeBuckets)
		for k, b := range runtimeBuckets {
			if hi <= b {
				j = k
				break
			}
		}
		if j < len(perBound) {
			perBound[j] += c
		}
		snap.Count += c
		mid := midpoint(lo, hi)
		snap.Sum += mid * float64(c)
	}
	var run uint64
	for i, c := range perBound {
		run += c
		snap.Cumulative[i] = run
	}
	return snap
}

// midpoint estimates a representative value for a bucket, clamping the
// runtime's infinite edge boundaries.
func midpoint(lo, hi float64) float64 {
	if math.IsInf(lo, -1) {
		lo = 0
	}
	if math.IsInf(hi, +1) {
		hi = lo
	}
	return (lo + hi) / 2
}
