package obs

import (
	"bytes"
	"runtime"
	"testing"
)

// TestRuntimeMetricsRoundTrip renders the rrmd_go_* families through the
// strict exposition parser: histogram coherence (cumulative buckets, +Inf ==
// _count, _sum present) must hold for the runtime/metrics-folded histograms,
// and the live gauges must carry sane values.
func TestRuntimeMetricsRoundTrip(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	runtime.GC() // populate GC-derived samples

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict parse of runtime families: %v\n%s", err, buf.String())
	}

	if v, ok := exp.Value("rrmd_go_goroutines"); !ok || v < 1 {
		t.Fatalf("rrmd_go_goroutines = %v %v", v, ok)
	}
	if v, ok := exp.Value("rrmd_go_gomaxprocs"); !ok || v < 1 {
		t.Fatalf("rrmd_go_gomaxprocs = %v %v", v, ok)
	}
	if v, ok := exp.Value("rrmd_go_heap_live_bytes"); !ok || v <= 0 {
		t.Fatalf("rrmd_go_heap_live_bytes = %v %v", v, ok)
	}
	if v, ok := exp.Value("rrmd_go_gc_cycles_total"); !ok || v < 1 {
		t.Fatalf("rrmd_go_gc_cycles_total = %v %v (after explicit GC)", v, ok)
	}
	// The folded runtime histograms must declare themselves as histograms
	// and have made it through bucket-coherence validation above.
	for _, fam := range []string{"rrmd_go_gc_pause_seconds", "rrmd_go_sched_latency_seconds"} {
		f := exp.Families[fam]
		if f == nil || f.Type != "histogram" {
			t.Fatalf("family %s missing or not a histogram: %+v", fam, f)
		}
	}
}
