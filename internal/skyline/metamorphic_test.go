package skyline

import (
	"slices"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/topk"
	"github.com/rankregret/rankregret/internal/xrand"
)

// Metamorphic properties of KSkyband under dataset mutation — the
// invariants the engine's incremental repair leans on:
//
//   - appending a row that k existing rows strictly dominate never changes
//     the k-skyband (the newcomer is beaten by k others, and anything it
//     always-beats was already beaten by its dominators, transitively);
//   - deleting a row outside the k-skyband never changes any top-k result
//     (modulo the id shift), because non-members by definition cannot appear
//     in any top-k.

// dominatedRow builds a row strictly below the componentwise minimum of k
// randomly chosen rows, so at least k rows strictly dominate it.
func dominatedRow(ds *dataset.Dataset, rng *xrand.Rand, k int) []float64 {
	row := make([]float64, ds.Dim())
	for j := range row {
		row[j] = 2 // above any normalized value; min() below pulls it down
	}
	for i := 0; i < k; i++ {
		src := ds.Row(rng.Intn(ds.N()))
		for j, v := range src {
			if v < row[j] {
				row[j] = v
			}
		}
	}
	for j := range row {
		row[j] -= 0.01
	}
	return row
}

func TestKSkybandAppendDominatedUnchanged(t *testing.T) {
	gens := []struct {
		name string
		make func(rng *xrand.Rand, n, d int) *dataset.Dataset
	}{
		{"indep", dataset.Independent},
		{"corr", dataset.Correlated},
		{"anti", dataset.Anticorrelated},
	}
	for _, g := range gens {
		for _, d := range []int{2, 4} {
			for _, k := range []int{1, 3, 8} {
				rng := xrand.New(int64(31*d + k))
				ds := g.make(rng, 160, d)
				before := KSkyband(ds, k)
				if before == nil {
					continue // band abandoned or trivial: nothing to compare
				}
				mut := ds.Snapshot()
				for i := 0; i < 4; i++ {
					mut.Append(dominatedRow(ds, rng, k))
				}
				after := KSkyband(mut, k)
				if !slices.Equal(before, after) {
					t.Errorf("%s d=%d k=%d: appending dominated rows changed the skyband: %v -> %v",
						g.name, d, k, before, after)
				}
			}
		}
	}
}

func TestTopKUnchangedByNonSkybandDelete(t *testing.T) {
	const (
		n       = 150
		k       = 4
		samples = 120
	)
	for _, d := range []int{2, 3, 5} {
		rng := xrand.New(int64(7 * d))
		ds := dataset.Independent(rng, n, d)
		band := KSkyband(ds, k)
		if band == nil {
			t.Fatalf("d=%d: skyband unavailable at this size", d)
		}
		inBand := make([]bool, n)
		for _, id := range band {
			inBand[id] = true
		}
		// Delete a handful of non-members.
		var victims []int
		for id := n - 1; id >= 0 && len(victims) < 5; id-- {
			if !inBand[id] {
				victims = append(victims, id)
			}
		}
		if len(victims) == 0 {
			t.Skipf("d=%d: skyband covers everything", d)
		}
		mut := ds.Snapshot()
		if err := mut.Delete(victims); err != nil {
			t.Fatal(err)
		}
		// Old id -> new id map across the deletion.
		deltas, ok := mut.Deltas(ds.Version())
		if !ok {
			t.Fatal("history truncated")
		}
		oldToNew, _, _, ok := dataset.ComposeDeltas(n, deltas)
		if !ok {
			t.Fatal("compose failed")
		}

		var before, after []float64
		var scratch []int
		for s := 0; s < samples; s++ {
			u := rng.UnitOrthantDirection(d)
			before = ds.Utilities(u, before)
			after = mut.Utilities(u, after)
			var wantIDs, gotIDs []int
			wantIDs, scratch = topk.SelectScratch(before, nil, k, scratch)
			gotIDs, scratch = topk.SelectScratch(after, nil, k, scratch)
			for i, oldID := range wantIDs {
				if mapped := oldToNew[oldID]; mapped != gotIDs[i] {
					t.Fatalf("d=%d sample %d: top-%d changed after non-skyband delete: old %v (mapped pos %d -> %d), new %v",
						d, s, k, wantIDs, i, mapped, gotIDs)
				}
			}
		}
	}
}
