package skyline

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/topk"
	"github.com/rankregret/rankregret/internal/xrand"
)

func absI(x int) int {
	if x < 0 {
		if x == -x {
			return 0
		}
		return -x
	}
	return x
}

// bruteSkyband counts always-beaters pairwise, the O(n^2 d) definition.
func bruteSkyband(ds *dataset.Dataset, k int) []int {
	n := ds.N()
	var out []int
	for i := 0; i < n; i++ {
		beaters := 0
		for j := 0; j < n; j++ {
			if j != i && alwaysBeats(ds.Row(j), ds.Row(i), j, i) {
				beaters++
			}
		}
		if beaters < k {
			out = append(out, i)
		}
	}
	return out
}

// tiedDataset quantizes attribute values so exact ties and duplicate rows —
// the cases the always-beats tie-break logic exists for — are common.
func tiedDataset(seed int64, n, d, levels int) *dataset.Dataset {
	rng := xrand.New(seed)
	ds := dataset.New(d)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = float64(rng.Intn(levels)) / float64(levels)
		}
		ds.Append(row)
	}
	return ds
}

// Property: the sort-filter scan agrees with the brute-force definition.
func TestKSkybandAgreesWithBruteForce(t *testing.T) {
	f := func(seed int64, nn, dd, ll, kk int) bool {
		n := absI(nn)%80 + 2
		d := absI(dd)%4 + 1
		ds := tiedDataset(seed, n, d, absI(ll)%5+1)
		k := absI(kk)%(n-1) + 1
		got := KSkyband(ds, k)
		want := bruteSkyband(ds, k)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (the pruning soundness theorem): for any utility vector, the
// top-k list computed over the k-skyband candidates alone is identical to
// the top-k list over the full dataset — ids, order, and tie-breaks.
func TestKSkybandPreservesTopK(t *testing.T) {
	f := func(seed int64, nn, dd, kk int) bool {
		n := absI(nn)%120 + 2
		d := absI(dd)%4 + 1
		ds := tiedDataset(seed, n, d, 4)
		k := absI(kk)%(n-1) + 1
		band := KSkyband(ds, k)
		if band == nil {
			return true // no pruning: trivially sound
		}
		if len(band) < k {
			return false // the band must always hold at least k tuples
		}
		sub := ds.Subset(band)
		rng := xrand.New(seed + 42)
		u := make([]float64, d)
		for trial := 0; trial < 8; trial++ {
			for j := range u {
				u[j] = float64(rng.Intn(3)) / 2 // zeros are the adversarial case
			}
			allZero := true
			for _, w := range u {
				if w != 0 {
					allZero = false
				}
			}
			if allZero {
				u[0] = 1
			}
			want := topk.TopK(ds, u, k, nil)
			subScores := sub.Utilities(u, nil)
			mapped := topk.Select(subScores, band, k, nil)
			if !reflect.DeepEqual(mapped, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestKSkybandEdges(t *testing.T) {
	ds := dataset.MustFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}})
	// k >= n: no pruning.
	if got := KSkyband(ds, 4); got != nil {
		t.Errorf("KSkyband(k=n) = %v, want nil", got)
	}
	if got := KSkyband(ds, 0); got != nil {
		t.Errorf("KSkyband(k=0) = %v, want nil", got)
	}
	// k = 1: tuple 3 is always-beaten by tuple 2 (dominating, higher index —
	// but strictly greater everywhere, so the tie-break never saves it).
	got := KSkyband(ds, 1)
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("KSkyband(k=1) = %v, want [0 1 2]", got)
	}
}
