package skyline

import (
	"testing"
	"testing/quick"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

// randomDataset builds a bounded random dataset from quick's fuzz inputs.
func randomDataset(seed int64, n, d int) *dataset.Dataset {
	if n < 1 {
		n = 1
	}
	n = n%64 + 1
	if d < 1 {
		d = 1
	}
	d = d%4 + 1
	return dataset.Independent(xrand.New(seed), n, d)
}

// Property: every non-skyline tuple is dominated by some skyline tuple,
// and no skyline tuple is dominated at all.
func TestQuickSkylinePartition(t *testing.T) {
	f := func(seed int64, n, d int) bool {
		ds := randomDataset(seed, n, d)
		onSky := map[int]bool{}
		for _, id := range Compute(ds) {
			onSky[id] = true
		}
		for i := 0; i < ds.N(); i++ {
			if onSky[i] == IsDominated(ds, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the skyline of the skyline is itself (idempotence).
func TestQuickSkylineIdempotent(t *testing.T) {
	f := func(seed int64, n, d int) bool {
		ds := randomDataset(seed, n, d)
		sky := Compute(ds)
		sub := ds.Subset(sky)
		again := Compute(sub)
		return len(again) == sub.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: adding a tuple never removes existing skyline members unless it
// dominates them; concretely, the skyline of D is a superset of the skyline
// of D restricted to the skyline's own members.
func TestQuickSkylineStableUnderDominatedInsert(t *testing.T) {
	f := func(seed int64, n, d int) bool {
		ds := randomDataset(seed, n, d)
		sky := Compute(ds)
		// Insert a copy of a dominated point: the skyline must not change.
		if len(sky) == ds.N() {
			return true // nothing dominated to copy
		}
		onSky := map[int]bool{}
		for _, id := range sky {
			onSky[id] = true
		}
		var dominated int = -1
		for i := 0; i < ds.N(); i++ {
			if !onSky[i] {
				dominated = i
				break
			}
		}
		grown := ds.Clone()
		grown.Append(ds.Row(dominated))
		sky2 := Compute(grown)
		if len(sky2) != len(sky) {
			return false
		}
		for i := range sky {
			if sky[i] != sky2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
