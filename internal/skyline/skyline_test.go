package skyline

import (
	"reflect"
	"sort"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/xrand"
)

// tableI is the paper's 7-tuple example; its skyline is {t1,t2,t3,t4,t7} =
// indices {0,1,2,3,6} (t5, t6 are dominated).
func tableI() *dataset.Dataset {
	return dataset.MustFromRows([][]float64{
		{0, 1}, {0.4, 0.95}, {0.57, 0.75}, {0.79, 0.6}, {0.2, 0.5}, {0.35, 0.3}, {1, 0},
	})
}

// bruteSkyline is the O(n^2) reference implementation.
func bruteSkyline(ds *dataset.Dataset) []int {
	var out []int
	for i := 0; i < ds.N(); i++ {
		if !IsDominated(ds, i) {
			out = append(out, i)
		}
	}
	return out
}

func TestTableISkyline(t *testing.T) {
	got := Compute(tableI())
	want := []int{0, 1, 2, 3, 6}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("skyline = %v, want %v", got, want)
	}
}

func TestSkyline2DMatchesBrute(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 40; trial++ {
		var ds *dataset.Dataset
		switch trial % 3 {
		case 0:
			ds = dataset.Independent(rng, 60, 2)
		case 1:
			ds = dataset.Correlated(rng, 60, 2)
		default:
			ds = dataset.Anticorrelated(rng, 60, 2)
		}
		got := Compute(ds)
		want := bruteSkyline(ds)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: skyline %v != brute %v", trial, got, want)
		}
	}
}

func TestSkylineHDMatchesBrute(t *testing.T) {
	rng := xrand.New(2)
	for trial := 0; trial < 30; trial++ {
		d := 3 + trial%3
		ds := dataset.Independent(rng, 50, d)
		got := Compute(ds)
		want := bruteSkyline(ds)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (d=%d): skyline %v != brute %v", trial, d, got, want)
		}
	}
}

func TestSkylineDuplicates(t *testing.T) {
	// Two identical maximal tuples: neither dominates the other, both stay.
	ds := dataset.MustFromRows([][]float64{
		{0.5, 0.5}, {0.9, 0.9}, {0.9, 0.9}, {0.1, 1.0},
	})
	got := Compute(ds)
	want := bruteSkyline(ds)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("duplicate handling: %v, brute %v", got, want)
	}
	found := map[int]bool{}
	for _, i := range got {
		found[i] = true
	}
	if !found[1] || !found[2] {
		t.Errorf("both duplicate maxima must be skyline members: %v", got)
	}
	if found[0] {
		t.Errorf("dominated tuple kept: %v", got)
	}
}

func TestQuarterCircleAllSkyline(t *testing.T) {
	// On the quarter circle no tuple dominates another.
	ds := dataset.QuarterCircle(50, 2)
	if got := Compute(ds); len(got) != 50 {
		t.Errorf("quarter circle skyline size %d, want 50", len(got))
	}
}

func TestCorrelatedSkylineSmallAnticorrelatedLarge(t *testing.T) {
	rng := xrand.New(3)
	corr := Compute(dataset.Correlated(rng, 2000, 2))
	anti := Compute(dataset.Anticorrelated(rng, 2000, 2))
	if len(corr) >= len(anti) {
		t.Errorf("correlated skyline (%d) should be smaller than anti-correlated (%d)", len(corr), len(anti))
	}
}

func TestComputeRestrictedFullReducesToSkyline(t *testing.T) {
	ds := tableI()
	got, err := ComputeRestricted(ds, funcspace.NewFull(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, Compute(ds)) {
		t.Errorf("restricted skyline under L = %v, want the skyline", got)
	}
}

func TestComputeRestrictedCone(t *testing.T) {
	// With u0 >= u1 the weight on attribute 0 is at least 1/2, so tuples
	// that are strong on A2 but weak on A1 drop out of the U-skyline.
	ds := tableI()
	cone, err := funcspace.WeakRanking(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ComputeRestricted(ds, cone)
	if err != nil {
		t.Fatal(err)
	}
	// U-skyline must be a subset of the skyline.
	sky := map[int]bool{}
	for _, i := range Compute(ds) {
		sky[i] = true
	}
	for _, i := range got {
		if !sky[i] {
			t.Fatalf("U-skyline member %d not in skyline", i)
		}
	}
	// t1 = (0, 1): under u=(x, 1-x) with x >= 0.5, its utility is 1-x
	// <= 0.5, while t3 = (0.57, 0.75) has utility >= 0.57*0.5 + 0.75*0.5 =
	// 0.66 at x=0.5 and 0.57 at x=1. So t3 U-dominates t1: t1 must be gone.
	for _, i := range got {
		if i == 0 {
			t.Errorf("t1 should be U-dominated under the weak ranking: %v", got)
		}
	}
	if len(got) == 0 || len(got) >= len(Compute(ds)) {
		t.Errorf("restricted skyline size %d should be in (0, skyline size)", len(got))
	}
}

func TestComputeRestrictedAgainstBrute(t *testing.T) {
	// Brute force: check every skyline tuple against every other tuple with
	// sampled directions to confirm no false removals.
	rng := xrand.New(4)
	ds := dataset.Independent(rng, 40, 2)
	cone, err := funcspace.WeakRanking(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ComputeRestricted(ds, cone)
	if err != nil {
		t.Fatal(err)
	}
	inGot := map[int]bool{}
	for _, i := range got {
		inGot[i] = true
	}
	// Every removed skyline tuple must have a dominator among the kept ones
	// confirmed by sampling; every kept one must have none.
	for _, i := range Compute(ds) {
		hasDominator := false
		for _, j := range got {
			if j == i {
				continue
			}
			dom, err := funcspace.Dominates(cone, ds.Row(j), ds.Row(i))
			if err != nil {
				t.Fatal(err)
			}
			if dom {
				hasDominator = true
				break
			}
		}
		if inGot[i] && hasDominator {
			t.Errorf("kept tuple %d is U-dominated", i)
		}
		if !inGot[i] && !hasDominator {
			t.Errorf("removed tuple %d has no U-dominator among kept tuples", i)
		}
	}
	sort.Ints(got)
	if !sort.IntsAreSorted(got) {
		t.Error("restricted skyline must be sorted")
	}
}
