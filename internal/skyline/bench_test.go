package skyline

import (
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/xrand"
)

func BenchmarkSkyline2DAnti10K(b *testing.B) {
	ds := dataset.Anticorrelated(xrand.New(1), 10000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(ds)
	}
}

func BenchmarkSkylineHDAnti10K(b *testing.B) {
	ds := dataset.Anticorrelated(xrand.New(1), 10000, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(ds)
	}
}

func BenchmarkSkylineHDCorr10K(b *testing.B) {
	ds := dataset.Correlated(xrand.New(1), 10000, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(ds)
	}
}

func BenchmarkRestrictedSkylineCone(b *testing.B) {
	ds := dataset.Anticorrelated(xrand.New(1), 2000, 3)
	cone, err := funcspace.WeakRanking(3, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeRestricted(ds, cone); err != nil {
			b.Fatal(err)
		}
	}
}
