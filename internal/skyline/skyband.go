package skyline

import (
	"sort"

	"github.com/rankregret/rankregret/internal/dataset"
)

// alwaysBeats reports whether tuple a outranks tuple b under EVERY non-zero
// non-negative utility vector, given the repository's deterministic
// tie-break (higher score wins; equal scores go to the lower index). That
// holds in exactly two cases:
//
//   - a >= b on every attribute and ida < idb: a's score is never below b's,
//     and any tie breaks toward a;
//   - a > b strictly on every attribute: a's score is strictly higher for
//     any u >= 0 with at least one positive weight, regardless of ids.
//
// Classical Pareto dominance is NOT sufficient here: a tuple can dominate a
// lower-indexed one yet lose the tie on a utility vector with zero weight on
// every differing attribute.
func alwaysBeats(a, b []float64, ida, idb int) bool {
	strictAll := true
	for j := range a {
		if a[j] < b[j] {
			return false
		}
		if a[j] <= b[j] {
			strictAll = false
		}
	}
	return strictAll || ida < idb
}

// kSkybandBudget caps the pairwise comparisons one KSkyband call may spend.
// The sort-filter scan is O(n * |skyband|) in the worst case (mutually
// incomparable data keeps everything), and the skyband is a pure pruning
// accelerator — when it would cost more than it can save, giving up and
// returning nil ("no pruning") is the right answer.
const kSkybandBudget = 1 << 26

// KSkyband returns, in ascending order, the ids of every tuple that fewer
// than k other tuples always-beat (see alwaysBeats) — the only tuples that
// can appear in ANY top-k result Phi_k(u, D) over the non-negative orthant,
// for this repository's deterministic tie-break. Restricting a top-k
// selection universe or a rank-k cover-candidate set to the k-skyband is
// therefore a pure optimization: results are provably unchanged, for the
// full space and every restricted sub-space alike.
//
// It returns nil (meaning "prune nothing") when k >= n, or when the scan
// exhausts its comparison budget — adversarially incomparable data (e.g.
// points on a sphere octant) has a skyband of nearly everything, and
// computing that exactly is all cost and no pruning.
//
// The scan sorts by (attribute sum desc, id asc), which every always-beater
// precedes its victims in, and counts beaters among kept tuples only: a
// discarded beater implies k kept beaters by transitivity, so the count is
// exact. O(n log n + n * |skyband| * d), bounded by the budget.
func KSkyband(ds *dataset.Dataset, k int) []int {
	n := ds.N()
	if k < 1 || k >= n {
		return nil
	}
	type rec struct {
		id  int
		sum float64
	}
	recs := make([]rec, n)
	for i := 0; i < n; i++ {
		var s float64
		for _, v := range ds.Row(i) {
			s += v
		}
		recs[i] = rec{i, s}
	}
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].sum != recs[b].sum {
			return recs[a].sum > recs[b].sum
		}
		return recs[a].id < recs[b].id
	})
	budget := kSkybandBudget
	kept := make([]int, 0, 2*k)
	for _, r := range recs {
		row := ds.Row(r.id)
		beaters := 0
		for _, s := range kept {
			if budget--; budget < 0 {
				return nil
			}
			if alwaysBeats(ds.Row(s), row, s, r.id) {
				if beaters++; beaters >= k {
					break
				}
			}
		}
		if beaters < k {
			kept = append(kept, r.id)
		}
	}
	sort.Ints(kept)
	return kept
}
