// Package skyline computes the candidate-tuple sets of Theorem 3: the
// classical skyline (Borzsony et al.) for RRM and the restricted U-skyline
// (Ciaccia and Martinenghi, Definition 5 in the paper) for RRRM. Rank-regret
// solvers only ever need to consider these tuples, which is what makes the
// 2D algorithm's matrix small and the HD set-cover instances tractable.
package skyline

import (
	"sort"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
)

// dominates reports classical Pareto dominance: a >= b on every attribute
// and a > b on at least one.
func dominates(a, b []float64) bool {
	strict := false
	for j := range a {
		if a[j] < b[j] {
			return false
		}
		if a[j] > b[j] {
			strict = true
		}
	}
	return strict
}

// Compute returns the indices of the skyline tuples of ds in ascending index
// order. It dispatches to a linearithmic sweep for d == 2 and a sort-filter
// scan for d > 2.
func Compute(ds *dataset.Dataset) []int {
	if ds.Dim() == 2 {
		return compute2D(ds)
	}
	return computeHD(ds)
}

// compute2D: sort by attribute 0 descending (ties: attribute 1 descending),
// then a single scan keeping tuples whose attribute 1 strictly exceeds the
// running maximum. O(n log n).
func compute2D(ds *dataset.Dataset) []int {
	n := ds.N()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		v0a, v0b := ds.Value(ia, 0), ds.Value(ib, 0)
		if v0a != v0b {
			return v0a > v0b
		}
		v1a, v1b := ds.Value(ia, 1), ds.Value(ib, 1)
		if v1a != v1b {
			return v1a > v1b
		}
		return ia < ib
	})
	var out []int
	best1 := -1.0
	prev0, prev1 := -1.0, -1.0
	first := true
	for _, i := range idx {
		v0, v1 := ds.Value(i, 0), ds.Value(i, 1)
		if !first && v0 == prev0 && v1 == prev1 {
			// Exact duplicate of a skyline tuple: neither dominates the
			// other, so keep it too (only if the previous one was kept).
			if len(out) > 0 {
				p := out[len(out)-1]
				if ds.Value(p, 0) == v0 && ds.Value(p, 1) == v1 {
					out = append(out, i)
				}
			}
			continue
		}
		if v1 > best1 {
			out = append(out, i)
			best1 = v1
		}
		prev0, prev1 = v0, v1
		first = false
	}
	sort.Ints(out)
	return out
}

// computeHD: sort-filter-skyline. Sorting by attribute sum descending
// guarantees no later tuple can dominate an earlier one, so one pass against
// the accumulated window suffices. O(n * s * d) with s the skyline size.
func computeHD(ds *dataset.Dataset) []int {
	n, d := ds.N(), ds.Dim()
	type rec struct {
		id  int
		sum float64
	}
	recs := make([]rec, n)
	for i := 0; i < n; i++ {
		var s float64
		row := ds.Row(i)
		for j := 0; j < d; j++ {
			s += row[j]
		}
		recs[i] = rec{i, s}
	}
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].sum != recs[b].sum {
			return recs[a].sum > recs[b].sum
		}
		return recs[a].id < recs[b].id
	})
	var out []int
	for _, r := range recs {
		row := ds.Row(r.id)
		dominated := false
		for _, s := range out {
			if dominates(ds.Row(s), row) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, r.id)
		}
	}
	sort.Ints(out)
	return out
}

// ComputeRestricted returns the U-skyline: tuples not U-dominated by any
// other tuple, for the given utility space. Per the containment
// Sky_U(D) ⊆ Sky(D) it first computes the classical skyline, then removes
// tuples U-dominated by another skyline tuple. For the Full space it reduces
// to Compute.
func ComputeRestricted(ds *dataset.Dataset, space funcspace.Space) ([]int, error) {
	sky := Compute(ds)
	if _, ok := space.(funcspace.Full); ok {
		return sky, nil
	}
	// A tuple is in the U-skyline iff no tuple U-dominates it. Any
	// U-dominator of t is not Pareto-dominated by... it may itself be
	// U-dominated, but U-dominance is transitive on distinct utility
	// profiles, so checking against classical-skyline members suffices:
	// if t' U-dominates t, then some U-skyline member also U-dominates t,
	// and U-skyline members are classical skyline members.
	out := make([]int, 0, len(sky))
	for _, t := range sky {
		dominated := false
		for _, t2 := range sky {
			if t2 == t {
				continue
			}
			dom, err := funcspace.Dominates(space, ds.Row(t2), ds.Row(t))
			if err != nil {
				return nil, err
			}
			if dom {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, t)
		}
	}
	return out, nil
}

// IsDominated reports whether tuple i is Pareto-dominated by any tuple in ds.
// Exposed for tests and examples.
func IsDominated(ds *dataset.Dataset, i int) bool {
	row := ds.Row(i)
	for j := 0; j < ds.N(); j++ {
		if j != i && dominates(ds.Row(j), row) {
			return true
		}
	}
	return false
}
