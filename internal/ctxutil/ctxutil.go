// Package ctxutil holds the shared cooperative-cancellation primitive the
// algorithm hot loops poll. Solvers accept a nil context to mean "never
// cancel", which keeps the non-context entry points allocation-free.
package ctxutil

import "context"

// Cancelled reports ctx's error if it is done; a nil ctx never cancels.
func Cancelled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
