package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/rankregret/rankregret/internal/obs"
	"github.com/rankregret/rankregret/internal/xrand"
)

// RunConfig parameterizes one open-loop run of a trace against a live rrmd.
type RunConfig struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client overrides the HTTP client (nil = a pooled default sized for
	// many concurrent in-flight requests).
	Client *http.Client
	// RequestTimeout is the client-side guard on each request (0 = 30s).
	// It is a backstop; server-side budgets do the real bounding.
	RequestTimeout time.Duration
	// SampleEvery is the /v1/metrics timeline sampling interval
	// (0 = 500ms, negative = no timeline).
	SampleEvery time.Duration
	// MaxSamples, when positive, is attached to every solve request as the
	// max_samples bound, capping the per-solve sampling cost. Use it to size
	// the workload to the machine: the smoke scripts bound it so the run
	// measures the serving path, not individual solve weight.
	MaxSamples int
	// OnResult, when set, receives every successful solve result (point
	// solves, pinned solves, and individual sweep items). It is called from
	// the firing goroutines concurrently; the callback must synchronize.
	// A/B harnesses use it to check that two runs of one trace — e.g. FIFO
	// vs affinity scheduling — return identical solutions.
	OnResult func(SolveOutcome)
	// Logf, when set, receives occasional progress lines.
	Logf func(format string, args ...any)
}

// SolveOutcome is one captured solve result: which trace event (and, for
// sweep items, which batch index) produced which tuple set.
type SolveOutcome struct {
	Event      int // index into Trace.Events
	Item       int // batch item index; -1 for point solves
	Dataset    string
	IDs        []int
	RankRegret int
	Exact      bool
}

// outcome is one fired event's result.
type outcome struct {
	kind     Kind
	status   int
	latMS    float64
	rejected bool
	// reason classifies a rejection: "queue" (429 admission), "degraded"
	// (503 from the degraded store), or "drain" (other 503s).
	reason  string
	errText string
	// batch item counts (sweep events only)
	itemsOK, itemsRejected int
}

// classifyReject names what refused a shed request. The server tags its
// 503 bodies with a machine-readable reason field; absent one (old servers,
// proxies), a 503 is attributed to draining.
func classifyReject(status int, errText string) string {
	switch {
	case status == http.StatusTooManyRequests:
		return "queue"
	case status != http.StatusServiceUnavailable:
		return ""
	case strings.Contains(errText, `"reason":"degraded"`):
		return "degraded"
	default:
		return "drain"
	}
}

// runner carries the shared state of one Run.
type runner struct {
	cfg    RunConfig
	client *http.Client
	base   string
	dims   map[string]int // dataset -> dimensionality, for mutate rows

	mu       sync.Mutex
	outcomes []outcome
	samples  []Sample
	policy   string
}

// Run fires the trace at the server open-loop — each event at its scheduled
// offset, never waiting for earlier events to complete — and reduces the
// outcomes to a Report. It returns once every in-flight request has finished
// (client-side timeouts bound the wait), leaving no goroutines behind.
// Cancelling ctx stops dispatching and cancels in-flight requests.
func Run(ctx context.Context, trace *Trace, cfg RunConfig) (*Report, error) {
	if trace == nil || len(trace.Events) == 0 {
		return nil, fmt.Errorf("loadgen: empty trace")
	}
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: RunConfig.BaseURL is required")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	client := cfg.Client
	if client == nil {
		// The default transport keeps only two idle conns per host; an
		// open-loop burst would churn through ephemeral ports without this.
		tr := &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		}
		client = &http.Client{Transport: tr}
		// The pool is ours, so drop its idle connections (and their reader
		// goroutines) when the run ends instead of leaking them.
		defer tr.CloseIdleConnections()
	}
	r := &runner{cfg: cfg, client: client, base: cfg.BaseURL, dims: map[string]int{}}

	if err := r.fetchDatasets(ctx, trace.Datasets); err != nil {
		return nil, err
	}

	// Timeline sampler: polls /v1/metrics until the run is over.
	samplerDone := make(chan struct{})
	samplerStop := make(chan struct{})
	start := time.Now()
	if cfg.SampleEvery >= 0 {
		every := cfg.SampleEvery
		if every == 0 {
			every = 500 * time.Millisecond
		}
		go func() {
			defer close(samplerDone)
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-samplerStop:
					return
				case <-ctx.Done():
					return
				case <-tick.C:
					r.sampleMetrics(ctx, time.Since(start))
				}
			}
		}()
	} else {
		close(samplerDone)
	}

	// Open-loop dispatch: sleep to each event's offset, then fire it on its
	// own goroutine. Server slowness never delays the next event.
	var wg sync.WaitGroup
	for i := range trace.Events {
		ev := &trace.Events[i]
		if d := time.Duration(ev.AtMS*float64(time.Millisecond)) - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		idx := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.fire(ctx, idx, ev)
		}()
	}
	wg.Wait()
	close(samplerStop)
	<-samplerDone
	wall := time.Since(start)

	// Final metrics fetch (fresh context: the run's ctx may be done) for the
	// policy name and a closing timeline point.
	fctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	r.sampleMetrics(fctx, wall)
	cancel()

	return r.report(trace, wall), nil
}

// wire shapes, mirrored locally so loadgen stays a pure HTTP client.
type wireDatasets struct {
	Datasets []struct {
		Name string `json:"name"`
		D    int    `json:"d"`
	} `json:"datasets"`
}

type wireMetrics struct {
	Engine struct {
		Solutions struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"solutions"`
		VecSets struct {
			Builds uint64 `json:"builds"`
			Reuses uint64 `json:"reuses"`
		} `json:"vecsets"`
	} `json:"engine"`
	Scheduler struct {
		Policy     string `json:"policy"`
		QueueDepth int    `json:"queue_depth"`
		Running    int64  `json:"running"`
		Rejected   uint64 `json:"rejected"`
	} `json:"scheduler"`
}

type wireVersions struct {
	Versions []struct {
		Version uint64 `json:"version"`
	} `json:"versions"`
}

type wireBatch struct {
	Results []struct {
		Index      int    `json:"index"`
		IDs        []int  `json:"ids"`
		RankRegret int    `json:"rank_regret"`
		Exact      bool   `json:"exact"`
		Error      string `json:"error,omitempty"`
		Rejected   bool   `json:"rejected,omitempty"`
	} `json:"results"`
}

// wireSolve is the subset of a solve response a result capture needs.
type wireSolve struct {
	IDs        []int `json:"ids"`
	RankRegret int   `json:"rank_regret"`
	Exact      bool  `json:"exact"`
}

// DiscoverDatasets returns the name -> dimensionality map of every dataset
// the server at baseURL currently serves: the discovery step behind "target
// every dataset" CLI defaults, and the source of the r >= d floor a
// generated trace must respect.
func DiscoverDatasets(ctx context.Context, baseURL string) (map[string]int, error) {
	r := &runner{client: http.DefaultClient, base: baseURL}
	var wd wireDatasets
	status, err := r.getJSON(ctx, "/v1/datasets", &wd)
	if err != nil {
		return nil, fmt.Errorf("loadgen: listing datasets at %s: %w", baseURL, err)
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("loadgen: listing datasets: HTTP %d", status)
	}
	dims := make(map[string]int, len(wd.Datasets))
	for _, d := range wd.Datasets {
		dims[d.Name] = d.D
	}
	return dims, nil
}

func (r *runner) fetchDatasets(ctx context.Context, want []string) error {
	var wd wireDatasets
	status, err := r.getJSON(ctx, "/v1/datasets", &wd)
	if err != nil {
		return fmt.Errorf("loadgen: listing datasets at %s: %w", r.base, err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("loadgen: listing datasets: HTTP %d", status)
	}
	for _, d := range wd.Datasets {
		r.dims[d.Name] = d.D
	}
	for _, name := range want {
		if _, ok := r.dims[name]; !ok {
			return fmt.Errorf("loadgen: server has no dataset %q (trace needs %v)", name, want)
		}
	}
	return nil
}

func (r *runner) sampleMetrics(ctx context.Context, at time.Duration) {
	sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	var wm wireMetrics
	status, err := r.getJSON(sctx, "/v1/metrics", &wm)
	if err != nil || status != http.StatusOK {
		return // a missed sample is a gap in the timeline, not a run failure
	}
	ps := r.scrapeProm(sctx)
	r.mu.Lock()
	defer r.mu.Unlock()
	if wm.Scheduler.Policy != "" {
		r.policy = wm.Scheduler.Policy
	}
	r.samples = append(r.samples, Sample{
		TMS:          float64(at.Microseconds()) / 1000,
		QueueDepth:   wm.Scheduler.QueueDepth,
		Running:      wm.Scheduler.Running,
		CacheHits:    wm.Engine.Solutions.Hits,
		CacheMisses:  wm.Engine.Solutions.Misses,
		VecSetReuses: wm.Engine.VecSets.Reuses,
		VecSetBuilds: wm.Engine.VecSets.Builds,
		Rejected:     wm.Scheduler.Rejected,
		SolveCount:   ps.solveCount,
		SolveSumMS:   ps.solveSumMS,
		Goroutines:   ps.goroutines,
		MaxBurnFast:  ps.maxBurnFast,
	})
}

// promSample is what one strict /metrics scrape contributes to the timeline.
type promSample struct {
	solveCount  uint64
	solveSumMS  float64
	goroutines  uint64
	maxBurnFast float64
}

// scrapeProm samples the daemon's Prometheus surface for the server-side
// solve-latency histogram, the goroutine gauge, and the worst fast-window SLO
// burn rate, so the timeline carries server-measured signals next to the
// client-measured ones. A daemon without GET /metrics (or an unparseable
// exposition) just leaves the fields zero — the JSON surface already carried
// the sample.
func (r *runner) scrapeProm(ctx context.Context) promSample {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/metrics", nil)
	if err != nil {
		return promSample{}
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return promSample{}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return promSample{}
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		if r.cfg.Logf != nil {
			r.cfg.Logf("scrape: /metrics failed validation: %v", err)
		}
		return promSample{}
	}
	var ps promSample
	c, _ := exp.Value("rrmd_solve_duration_seconds_count")
	s, _ := exp.Value("rrmd_solve_duration_seconds_sum")
	ps.solveCount, ps.solveSumMS = uint64(c), s*1000
	if g, ok := exp.Value("rrmd_go_goroutines"); ok {
		ps.goroutines = uint64(g)
	}
	if fam := exp.Families["rrmd_slo_burn_rate_fast"]; fam != nil {
		for _, v := range fam.Series {
			if v > ps.maxBurnFast {
				ps.maxBurnFast = v
			}
		}
	}
	return ps
}

// fire executes one event and records its outcome.
func (r *runner) fire(ctx context.Context, idx int, ev *Event) {
	rctx, cancel := context.WithTimeout(ctx, r.cfg.RequestTimeout)
	defer cancel()
	o := outcome{kind: ev.Kind}
	start := time.Now()
	switch ev.Kind {
	case KindSolve:
		var ws wireSolve
		o.status, o.errText = r.postJSON(rctx, "/v1/solve", r.solveBody(ev.Dataset, ev.R, 0), &ws)
		r.capture(idx, -1, ev, &ws, o)
	case KindPinned:
		o.status, o.errText = r.firePinned(rctx, idx, ev)
	case KindSweep:
		o = r.fireSweep(rctx, idx, ev)
	case KindMutate:
		o.status, o.errText = r.postJSON(rctx, "/v1/datasets/"+ev.Dataset+"/rows", map[string]any{
			"rows": mutationRows(ev.Seed, ev.Rows, r.dims[ev.Dataset]),
		}, nil)
	default:
		o.errText = fmt.Sprintf("unknown event kind %q", ev.Kind)
	}
	o.latMS = float64(time.Since(start).Microseconds()) / 1000
	o.rejected = o.status == http.StatusTooManyRequests || o.status == http.StatusServiceUnavailable
	if o.rejected {
		o.reason = classifyReject(o.status, o.errText)
	}
	if o.errText != "" && !o.rejected && r.cfg.Logf != nil {
		r.cfg.Logf("event %d (%s %s): %s", idx, ev.Kind, ev.Dataset, o.errText)
	}
	r.mu.Lock()
	r.outcomes = append(r.outcomes, o)
	r.mu.Unlock()
}

// capture forwards a successful solve result to the OnResult hook.
func (r *runner) capture(idx, item int, ev *Event, ws *wireSolve, o outcome) {
	if r.cfg.OnResult == nil || o.errText != "" || o.status < 200 || o.status > 299 {
		return
	}
	r.cfg.OnResult(SolveOutcome{
		Event:      idx,
		Item:       item,
		Dataset:    ev.Dataset,
		IDs:        ws.IDs,
		RankRegret: ws.RankRegret,
		Exact:      ws.Exact,
	})
}

// firePinned resolves a retained version of the event's dataset and solves
// pinned to it — the request pattern of a client holding a version across
// mutations. The version lookup is part of the measured operation. It pins
// the second-newest retained version when there is one (a genuinely old
// snapshot that still cannot age out between the lookup and the solve), the
// current version otherwise.
func (r *runner) firePinned(ctx context.Context, idx int, ev *Event) (int, string) {
	var wv wireVersions
	status, err := r.getJSON(ctx, "/v1/datasets/"+ev.Dataset+"/versions", &wv)
	if err != nil {
		return 0, err.Error()
	}
	if status != http.StatusOK || len(wv.Versions) == 0 {
		return status, fmt.Sprintf("versions lookup: HTTP %d", status)
	}
	pin := wv.Versions[0].Version
	if n := len(wv.Versions); n > 1 {
		pin = wv.Versions[n-2].Version
	}
	var ws wireSolve
	st, errText := r.postJSON(ctx, "/v1/solve", r.solveBody(ev.Dataset, ev.R, pin), &ws)
	r.capture(idx, -1, ev, &ws, outcome{status: st, errText: errText})
	return st, errText
}

func (r *runner) fireSweep(ctx context.Context, idx int, ev *Event) outcome {
	o := outcome{kind: ev.Kind}
	reqs := make([]map[string]any, 0, ev.Width)
	for i := 0; i < ev.Width; i++ {
		reqs = append(reqs, r.solveBody(ev.Dataset, ev.R+i, 0))
	}
	var wb wireBatch
	o.status, o.errText = r.postJSON(ctx, "/v1/solve/batch", map[string]any{"requests": reqs}, &wb)
	for _, it := range wb.Results {
		switch {
		case it.Rejected:
			o.itemsRejected++
		case it.Error == "" && len(it.IDs) > 0:
			o.itemsOK++
			r.capture(idx, it.Index, ev, &wireSolve{IDs: it.IDs, RankRegret: it.RankRegret, Exact: it.Exact}, o)
		}
	}
	return o
}

// solveBody assembles one solve request, honoring the run-wide MaxSamples
// bound and an optional version pin (0 = current).
func (r *runner) solveBody(ds string, rk int, version uint64) map[string]any {
	body := map[string]any{"dataset": ds, "r": rk}
	if version != 0 {
		body["version"] = version
	}
	if r.cfg.MaxSamples > 0 {
		body["max_samples"] = r.cfg.MaxSamples
	}
	return body
}

// mutationRows derives deterministic row content from the event seed, so a
// replayed trace appends byte-identical data. Values are uniform in [0,1] —
// the units of a normalized dataset.
func mutationRows(seed int64, rows, dim int) [][]float64 {
	rng := xrand.New(seed)
	out := make([][]float64, rows)
	for i := range out {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.Float64()
		}
		out[i] = row
	}
	return out
}

// postJSON posts body and decodes a 2xx response into out (when non-nil).
// The returned string is an error description for transport failures or
// non-2xx statuses ("" on success); the int is the HTTP status (0 when the
// request never completed).
func (r *runner) postJSON(ctx context.Context, path string, body any, out any) (int, string) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err.Error()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(b))
	if err != nil {
		return 0, err.Error()
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return resp.StatusCode, fmt.Sprintf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, "decoding response: " + err.Error()
		}
	} else {
		io.Copy(io.Discard, resp.Body) // drain so the connection is reused
	}
	return resp.StatusCode, ""
}

func (r *runner) getJSON(ctx context.Context, path string, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, nil
}

// report reduces the collected outcomes to the Report shape.
func (r *runner) report(trace *Trace, wall time.Duration) *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		Schema:     ReportSchema,
		Scenario:   trace.Scenario,
		Seed:       trace.Seed,
		Policy:     r.policy,
		BaseURL:    r.base,
		DurationMS: float64(wall.Microseconds()) / 1000,
		PerKind:    map[string]KindReport{},
		Timeline:   r.samples,
	}
	var okLat, rejLat []float64
	perKindLat := map[Kind][]float64{}
	for _, o := range r.outcomes {
		rep.Offered++
		kr := rep.PerKind[string(o.kind)]
		kr.Offered++
		switch {
		case o.rejected:
			rep.Rejected++
			kr.Rejected++
			switch o.reason {
			case "queue":
				rep.RejectedQueue++
				kr.RejectedQueue++
			case "degraded":
				rep.RejectedDegraded++
				kr.RejectedDegraded++
			default:
				rep.RejectedDrain++
				kr.RejectedDrain++
			}
			rejLat = append(rejLat, o.latMS)
		case o.errText != "":
			rep.Errors++
			kr.Errors++
			if o.status >= 500 && o.status != http.StatusServiceUnavailable {
				rep.Unexpected5xx++
			}
		default:
			rep.OK++
			kr.OK++
			okLat = append(okLat, o.latMS)
			perKindLat[o.kind] = append(perKindLat[o.kind], o.latMS)
		}
		rep.BatchItemsAccepted += o.itemsOK
		rep.BatchItemsRejected += o.itemsRejected
		rep.PerKind[string(o.kind)] = kr
	}
	for kind, lat := range perKindLat {
		kr := rep.PerKind[string(kind)]
		kr.Latency = latencyStats(lat)
		rep.PerKind[string(kind)] = kr
	}
	rep.Latency = latencyStats(okLat)
	rep.RejectLatency = latencyStats(rejLat)
	if secs := wall.Seconds(); secs > 0 {
		rep.ThroughputRPS = float64(rep.OK) / secs
	}
	if rep.Offered > 0 {
		rep.RejectRate = float64(rep.Rejected) / float64(rep.Offered)
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Offered)
	}
	return rep
}
