package loadgen

import (
	"errors"
	"fmt"
	"time"

	"github.com/rankregret/rankregret/internal/xrand"
)

// Scenario names for Config.Scenario.
const (
	// ScenarioSteady offers a flat Poisson stream at Rate for Duration.
	ScenarioSteady = "steady"
	// ScenarioBurst alternates calm traffic at Rate with bursts at
	// BurstRate, exercising the server's overload and shedding behavior.
	ScenarioBurst = "burst"
)

// Mix weighs the request kinds of a generated trace. Weights need not sum
// to 1; they are normalized. A zero weight removes the kind entirely.
type Mix struct {
	Solve  float64 `json:"solve"`
	Sweep  float64 `json:"sweep"`
	Mutate float64 `json:"mutate"`
	Pinned float64 `json:"pinned"`
}

// DefaultMix is a read-mostly serving blend: mostly point solves, some
// sweeps, a trickle of mutations and pinned-version reads.
var DefaultMix = Mix{Solve: 0.70, Sweep: 0.10, Mutate: 0.10, Pinned: 0.10}

// Config describes a scenario to generate. Zero values take the documented
// defaults; Datasets is the only required field beyond Scenario.
type Config struct {
	// Scenario is ScenarioSteady or ScenarioBurst.
	Scenario string
	// Seed makes the whole trace reproducible: same Config, same trace.
	Seed int64
	// Duration is the offered-load window (default 20s).
	Duration time.Duration
	// Rate is the mean request rate in requests/second (default 20). For
	// burst scenarios it is the calm-phase rate.
	Rate float64
	// BurstRate is the burst-phase rate (default 5×Rate); BurstPeriod and
	// BurstLen shape the phases (defaults 5s and 1s). Burst scenarios only.
	BurstRate   float64
	BurstPeriod time.Duration
	BurstLen    time.Duration
	// Datasets are the registry names requests are spread over.
	Datasets []string
	// Mix weighs the request kinds (default DefaultMix).
	Mix Mix
	// RMin and RMax bound the solve budget: r is drawn uniformly from
	// [RMin, RMax] (defaults 2 and 7; RMax is raised to RMin when the two
	// cross). Set RMin to the largest dataset dimensionality — the HDRRM
	// family needs r >= d — so a generated trace never carries a solve the
	// server must reject. Small budgets keep individual solves cheap so the
	// trace measures the serving path, not one giant solve.
	RMin int
	RMax int
	// SweepWidth is how many consecutive r values one sweep covers
	// (default 4).
	SweepWidth int
	// MutateRows is how many rows one mutation appends (default 8).
	MutateRows int
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Scenario == "" {
		out.Scenario = ScenarioSteady
	}
	if out.Scenario != ScenarioSteady && out.Scenario != ScenarioBurst {
		return out, fmt.Errorf("loadgen: unknown scenario %q (want %s or %s)", out.Scenario, ScenarioSteady, ScenarioBurst)
	}
	if len(out.Datasets) == 0 {
		return out, errors.New("loadgen: config needs at least one dataset")
	}
	if out.Duration <= 0 {
		out.Duration = 20 * time.Second
	}
	if out.Rate <= 0 {
		out.Rate = 20
	}
	if out.BurstRate <= 0 {
		out.BurstRate = 5 * out.Rate
	}
	if out.BurstPeriod <= 0 {
		out.BurstPeriod = 5 * time.Second
	}
	if out.BurstLen <= 0 {
		out.BurstLen = time.Second
	}
	if out.Mix == (Mix{}) {
		out.Mix = DefaultMix
	}
	if out.Mix.Solve < 0 || out.Mix.Sweep < 0 || out.Mix.Mutate < 0 || out.Mix.Pinned < 0 {
		return out, errors.New("loadgen: mix weights must be non-negative")
	}
	if out.Mix.Solve+out.Mix.Sweep+out.Mix.Mutate+out.Mix.Pinned <= 0 {
		return out, errors.New("loadgen: mix weights must not all be zero")
	}
	if out.RMin < 2 {
		out.RMin = 2
	}
	if out.RMax < 2 {
		out.RMax = 7
	}
	if out.RMax < out.RMin {
		out.RMax = out.RMin
	}
	if out.SweepWidth < 1 {
		out.SweepWidth = 4
	}
	if out.MutateRows < 1 {
		out.MutateRows = 8
	}
	return out, nil
}

// Generate expands a scenario config into a concrete trace. The expansion is
// pure and seeded: the same config always yields the same trace, so a trace
// can be regenerated instead of shipped, and two policies can be driven with
// identical request sequences.
func Generate(cfg Config) (*Trace, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := xrand.New(c.Seed)
	arrivalRNG := rng.Split(0x41525256) // "ARRV"
	eventRNG := rng.Split(0x45564e54)   // "EVNT"

	var offsets []float64
	switch c.Scenario {
	case ScenarioBurst:
		offsets = BurstArrivals(arrivalRNG, c.Rate, c.BurstRate, c.BurstPeriod, c.BurstLen, c.Duration)
	default:
		offsets = PoissonArrivals(arrivalRNG, c.Rate, c.Duration)
	}

	total := c.Mix.Solve + c.Mix.Sweep + c.Mix.Mutate + c.Mix.Pinned
	events := make([]Event, 0, len(offsets))
	for _, at := range offsets {
		ev := Event{AtMS: at, Dataset: c.Datasets[eventRNG.Intn(len(c.Datasets))]}
		pick := eventRNG.Float64() * total
		drawR := func() int { return c.RMin + eventRNG.Intn(c.RMax-c.RMin+1) }
		switch {
		case pick < c.Mix.Solve:
			ev.Kind = KindSolve
			ev.R = drawR()
		case pick < c.Mix.Solve+c.Mix.Sweep:
			ev.Kind = KindSweep
			ev.R = drawR()
			ev.Width = c.SweepWidth
		case pick < c.Mix.Solve+c.Mix.Sweep+c.Mix.Mutate:
			ev.Kind = KindMutate
			ev.Rows = c.MutateRows
			ev.Seed = eventRNG.Int63()
		default:
			ev.Kind = KindPinned
			ev.R = drawR()
		}
		events = append(events, ev)
	}
	return &Trace{
		Schema:     TraceSchema,
		Scenario:   c.Scenario,
		Seed:       c.Seed,
		DurationMS: float64(c.Duration.Milliseconds()),
		Datasets:   append([]string(nil), c.Datasets...),
		Events:     events,
	}, nil
}
