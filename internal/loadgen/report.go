package loadgen

import (
	"encoding/json"
	"math"
	"os"
	"sort"
)

// ReportSchema versions the BENCH_serving.json format.
const ReportSchema = 1

// LatencyMS summarizes a latency distribution in milliseconds. Percentiles
// use the nearest-rank method over the observed samples.
type LatencyMS struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean_ms"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// KindReport breaks the outcome counts and latency down by request kind.
// The Rejected* fields split sheds by what refused the request: a full
// scheduler queue (429), a degraded store refusing mutations (503 with
// reason "degraded"), or a draining server (other 503s).
type KindReport struct {
	Offered          int       `json:"offered"`
	OK               int       `json:"ok"`
	Rejected         int       `json:"rejected"`
	RejectedQueue    int       `json:"rejected_queue,omitempty"`
	RejectedDegraded int       `json:"rejected_degraded,omitempty"`
	RejectedDrain    int       `json:"rejected_drain,omitempty"`
	Errors           int       `json:"errors"`
	Latency          LatencyMS `json:"latency"`
}

// Sample is one point of the /v1/metrics timeline: queue pressure and cache
// effectiveness as the trace played.
type Sample struct {
	TMS          float64 `json:"t_ms"`
	QueueDepth   int     `json:"queue_depth"`
	Running      int64   `json:"running"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	VecSetReuses uint64  `json:"vecset_reuses"`
	VecSetBuilds uint64  `json:"vecset_builds"`
	Rejected     uint64  `json:"sched_rejected"`
	// SolveCount/SolveSumMS are the server-measured solve-latency totals
	// scraped from the Prometheus surface (rrmd_solve_duration_seconds),
	// placing server-side latency next to the client-side percentiles.
	// Zero against a daemon without GET /metrics.
	SolveCount uint64  `json:"prom_solve_count,omitempty"`
	SolveSumMS float64 `json:"prom_solve_sum_ms,omitempty"`
	// Goroutines and MaxBurnFast ride along from the same scrape: the Go
	// runtime gauge (rrmd_go_goroutines) and the worst fast-window SLO burn
	// rate across objectives (rrmd_slo_burn_rate_fast), so a load run's
	// timeline shows runtime pressure and budget burn next to queue depth.
	Goroutines  uint64  `json:"goroutines,omitempty"`
	MaxBurnFast float64 `json:"slo_max_burn_fast,omitempty"`
}

// Report is the BENCH_serving.json payload: one load run reduced to the
// serving numbers that matter. Rejected counts 429/503 sheds (the server
// protecting itself, by design); Errors counts everything else non-2xx;
// Unexpected5xx is the subset of errors with a 5xx status other than 503 —
// the count that should be zero on a healthy server and that CI asserts on.
type Report struct {
	Schema     int     `json:"schema"`
	Scenario   string  `json:"scenario"`
	Seed       int64   `json:"seed"`
	Policy     string  `json:"policy"`
	BaseURL    string  `json:"base_url"`
	DurationMS float64 `json:"duration_ms"`

	Offered  int `json:"offered"`
	OK       int `json:"ok"`
	Rejected int `json:"rejected"`
	// Rejected splits by rejecting subsystem: RejectedQueue is scheduler
	// admission (429), RejectedDegraded is the store refusing mutations
	// while degraded (503 + reason "degraded"), RejectedDrain is a
	// shutting-down server (other 503s).
	RejectedQueue    int     `json:"rejected_queue"`
	RejectedDegraded int     `json:"rejected_degraded"`
	RejectedDrain    int     `json:"rejected_drain"`
	Errors           int     `json:"errors"`
	Unexpected5xx    int     `json:"unexpected_5xx"`
	ThroughputRPS    float64 `json:"throughput_rps"`
	RejectRate       float64 `json:"reject_rate"`
	ErrorRate        float64 `json:"error_rate"`

	// Latency covers successful requests; RejectLatency covers sheds, and
	// should stay small — an overloaded server must say no quickly.
	Latency       LatencyMS `json:"latency"`
	RejectLatency LatencyMS `json:"reject_latency"`

	// BatchItems* count individual sweep items inside HTTP-200 batch
	// responses (per-item accept/reject is invisible to the HTTP status).
	BatchItemsAccepted int `json:"batch_items_accepted"`
	BatchItemsRejected int `json:"batch_items_rejected"`

	PerKind  map[string]KindReport `json:"per_kind"`
	Timeline []Sample              `json:"timeline,omitempty"`
}

// Save writes the report as indented JSON to path.
func (r *Report) Save(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// latencyStats reduces a sample set to its summary. The input is not
// modified.
func latencyStats(ms []float64) LatencyMS {
	if len(ms) == 0 {
		return LatencyMS{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return LatencyMS{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		P50:   percentile(sorted, 50),
		P95:   percentile(sorted, 95),
		P99:   percentile(sorted, 99),
		Max:   sorted[len(sorted)-1],
	}
}

// percentile returns the nearest-rank p-th percentile of sorted (ascending)
// samples: the smallest value with at least p% of the mass at or below it.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
