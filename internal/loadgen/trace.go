// Package loadgen is an open-loop traffic generator for rrmd: it turns a
// seeded scenario description into a deterministic request trace (solves,
// parameter sweeps, dataset mutations, and pinned-version solves over
// multiple named datasets, with Poisson or bursty arrival times), fires the
// trace at a live daemon over HTTP without waiting for completions — the
// open-loop discipline, so server slowdowns surface as latency instead of
// silently throttling the offered load — and reduces the outcomes to a
// serving report (latency percentiles, throughput, reject/error rates, and
// queue-depth / cache-hit timelines sampled from /v1/metrics).
//
// Traces are plain JSON and replayable: saving a generated trace and
// replaying it later offers byte-identical request sequences to both sides
// of an A/B comparison (for example FIFO vs affinity queue policies).
package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// TraceSchema versions the trace file format.
const TraceSchema = 1

// Kind names one request type of a trace event.
type Kind string

const (
	// KindSolve is a synchronous POST /v1/solve on the current version.
	KindSolve Kind = "solve"
	// KindSweep is a POST /v1/solve/batch sweeping r over a small range.
	KindSweep Kind = "sweep"
	// KindMutate appends rows via POST /v1/datasets/{name}/rows, publishing
	// a new dataset version.
	KindMutate Kind = "mutate"
	// KindPinned solves against the oldest retained version (looked up at
	// fire time), exercising the pinned-version path.
	KindPinned Kind = "pinned"
)

// Event is one scheduled request of an open-loop trace.
type Event struct {
	// AtMS is the firing offset from trace start, in milliseconds.
	AtMS float64 `json:"at_ms"`
	Kind Kind    `json:"kind"`
	// Dataset names the registry entry the request targets.
	Dataset string `json:"dataset"`
	// R is the solve budget for solve/pinned events, and the first r of the
	// swept range for sweep events.
	R int `json:"r,omitempty"`
	// Width is how many consecutive r values a sweep covers.
	Width int `json:"width,omitempty"`
	// Rows is how many rows a mutate appends.
	Rows int `json:"rows,omitempty"`
	// Seed salts the row content of a mutate so replays append identical
	// data.
	Seed int64 `json:"seed,omitempty"`
}

// Trace is a deterministic, replayable request schedule.
type Trace struct {
	Schema     int      `json:"schema"`
	Scenario   string   `json:"scenario"`
	Seed       int64    `json:"seed"`
	DurationMS float64  `json:"duration_ms"`
	Datasets   []string `json:"datasets"`
	Events     []Event  `json:"events"`
}

// Save writes the trace as indented JSON to path.
func (t *Trace) Save(path string) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadTrace reads a trace saved by Save, validating the schema and restoring
// the firing order (events must be sorted by offset for the open-loop
// dispatcher; a hand-edited file is healed rather than rejected).
func LoadTrace(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trace
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("loadgen: parsing trace %s: %w", path, err)
	}
	if t.Schema != TraceSchema {
		return nil, fmt.Errorf("loadgen: trace %s has schema %d, want %d", path, t.Schema, TraceSchema)
	}
	if len(t.Events) == 0 {
		return nil, fmt.Errorf("loadgen: trace %s has no events", path)
	}
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].AtMS < t.Events[j].AtMS })
	return &t, nil
}
