package loadgen

import (
	"math"
	"time"

	"github.com/rankregret/rankregret/internal/xrand"
)

// PoissonArrivals returns the event offsets (milliseconds, ascending, all in
// [0, d)) of a homogeneous Poisson process with mean rate rps. Inter-arrival
// gaps are exponential, so the stream has the memoryless burstiness of real
// open-loop traffic rather than a metronome's.
func PoissonArrivals(rng *xrand.Rand, rps float64, d time.Duration) []float64 {
	durMS := float64(d.Milliseconds())
	return piecewiseArrivals(rng, durMS, func(float64) float64 { return rps / 1000 }, func(float64) float64 { return durMS })
}

// BurstArrivals returns the offsets of a piecewise-constant-rate Poisson
// process that alternates calm and burst phases: every period, the first
// burstLen runs at burstRPS and the remainder at baseRPS. Within each phase
// arrivals are Poisson, so bursts are jittered rather than square waves of
// evenly spaced requests.
func BurstArrivals(rng *xrand.Rand, baseRPS, burstRPS float64, period, burstLen, d time.Duration) []float64 {
	durMS := float64(d.Milliseconds())
	perMS := float64(period.Milliseconds())
	burstMS := float64(burstLen.Milliseconds())
	if perMS <= 0 || burstMS <= 0 || burstMS >= perMS {
		// Degenerate phase geometry: fall back to the flat process at the
		// higher rate so a misconfigured scenario still offers load.
		return PoissonArrivals(rng, math.Max(baseRPS, burstRPS), d)
	}
	rate := func(t float64) float64 {
		if math.Mod(t, perMS) < burstMS {
			return burstRPS / 1000
		}
		return baseRPS / 1000
	}
	// boundary returns the next phase edge after t, where the rate changes
	// and the exponential draw must be restarted.
	boundary := func(t float64) float64 {
		phase := math.Mod(t, perMS)
		edge := t - phase + burstMS
		if phase >= burstMS {
			edge = t - phase + perMS
		}
		if edge <= t { // guard float equality at an edge
			edge = t + burstMS
		}
		return math.Min(edge, durMS)
	}
	return piecewiseArrivals(rng, durMS, rate, boundary)
}

// piecewiseArrivals generates a Poisson process whose rate (events per
// millisecond) is constant between the boundaries reported by boundary. The
// standard construction: draw an exponential gap at the current rate; if it
// crosses the next rate boundary, advance to the boundary and redraw there
// (the memoryless property makes the restart exact, not an approximation).
func piecewiseArrivals(rng *xrand.Rand, durMS float64, rate func(t float64) float64, boundary func(t float64) float64) []float64 {
	var out []float64
	t := 0.0
	for t < durMS {
		r := rate(t)
		b := boundary(t)
		if b <= t {
			b = durMS
		}
		if r <= 0 {
			t = b
			continue
		}
		gap := -math.Log(1-rng.Float64()) / r
		if t+gap >= b {
			t = b
			continue
		}
		t += gap
		out = append(out, t)
	}
	return out
}
