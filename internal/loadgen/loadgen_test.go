package loadgen

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/xrand"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{
		Scenario: ScenarioSteady,
		Seed:     42,
		Duration: 5 * time.Second,
		Rate:     80,
		Datasets: []string{"a", "b", "c"},
	}
	t1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("same config generated different traces")
	}
	cfg.Seed = 43
	t3, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(t1.Events, t3.Events) {
		t.Fatal("different seeds generated identical event streams")
	}
}

func TestGenerateShape(t *testing.T) {
	tr, err := Generate(Config{
		Scenario: ScenarioSteady,
		Seed:     7,
		Duration: 10 * time.Second,
		Rate:     100,
		Datasets: []string{"x", "y"},
		RMax:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mean 1000 events; Poisson sd ~32, so ±20% is a >6-sigma bound.
	if n := len(tr.Events); n < 800 || n > 1200 {
		t.Fatalf("steady 100rps x 10s generated %d events, want ~1000", n)
	}
	kinds := map[Kind]int{}
	last := -1.0
	for _, ev := range tr.Events {
		if ev.AtMS < last {
			t.Fatalf("events out of order: %v after %v", ev.AtMS, last)
		}
		last = ev.AtMS
		if ev.AtMS < 0 || ev.AtMS >= tr.DurationMS {
			t.Fatalf("event offset %v outside [0, %v)", ev.AtMS, tr.DurationMS)
		}
		if ev.Dataset != "x" && ev.Dataset != "y" {
			t.Fatalf("event targets unknown dataset %q", ev.Dataset)
		}
		kinds[ev.Kind]++
		switch ev.Kind {
		case KindSolve, KindPinned:
			if ev.R < 2 || ev.R > 5 {
				t.Fatalf("%s event has r=%d outside [2, 5]", ev.Kind, ev.R)
			}
		case KindSweep:
			if ev.Width < 1 {
				t.Fatalf("sweep event has width %d", ev.Width)
			}
		case KindMutate:
			if ev.Rows < 1 || ev.Seed == 0 {
				t.Fatalf("mutate event malformed: %+v", ev)
			}
		}
	}
	// The default mix includes all four kinds; at ~1000 events each should
	// appear (P(missing a 10% kind) ~ 1e-46).
	for _, k := range []Kind{KindSolve, KindSweep, KindMutate, KindPinned} {
		if kinds[k] == 0 {
			t.Fatalf("kind %s absent from %d events: %v", k, len(tr.Events), kinds)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Scenario: "nope", Datasets: []string{"a"}}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Generate(Config{Scenario: ScenarioSteady}); err == nil {
		t.Fatal("empty dataset list accepted")
	}
	if _, err := Generate(Config{Scenario: ScenarioSteady, Datasets: []string{"a"}, Mix: Mix{Solve: -1}}); err == nil {
		t.Fatal("negative mix weight accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr, err := Generate(Config{
		Scenario: ScenarioBurst,
		Seed:     9,
		Duration: 3 * time.Second,
		Rate:     50,
		Datasets: []string{"d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("trace did not survive a save/load round trip")
	}
}

func TestBurstArrivalsModulate(t *testing.T) {
	rng := xrand.New(11)
	// 1s bursts at 200rps every 5s, calm at 20rps, for 20s: 4 full periods.
	offsets := BurstArrivals(rng, 20, 200, 5*time.Second, time.Second, 20*time.Second)
	inBurst, inCalm := 0, 0
	for _, at := range offsets {
		if math.Mod(at, 5000) < 1000 {
			inBurst++
		} else {
			inCalm++
		}
	}
	// Expectation: 4x1s x 200rps = 800 burst, 4x4s x 20rps = 320 calm. The
	// per-second burst rate must clearly exceed the calm rate.
	burstRate := float64(inBurst) / 4
	calmRate := float64(inCalm) / 16
	if burstRate < 3*calmRate {
		t.Fatalf("burst rate %.1f/s not clearly above calm rate %.1f/s", burstRate, calmRate)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{50, 5}, {95, 10}, {99, 10}, {100, 10}, {10, 1}}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile of empty = %v, want 0", got)
	}
	st := latencyStats([]float64{3, 1, 2})
	if st.Count != 3 || st.P50 != 2 || st.Max != 3 || st.Mean != 2 {
		t.Errorf("latencyStats = %+v", st)
	}
}

func TestMutationRowsDeterministic(t *testing.T) {
	a := mutationRows(77, 4, 3)
	b := mutationRows(77, 4, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different mutation rows")
	}
	if len(a) != 4 || len(a[0]) != 3 {
		t.Fatalf("rows shape %dx%d, want 4x3", len(a), len(a[0]))
	}
	for _, row := range a {
		for _, v := range row {
			if v < 0 || v >= 1 {
				t.Fatalf("row value %v outside [0,1)", v)
			}
		}
	}
}
