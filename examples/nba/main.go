// NBA: a high-dimensional scouting short-list. A general manager wants a
// handful of player/seasons such that, for any linear weighting of five
// box-score statistics, the list contains someone ranked near the top of
// the whole database — the paper's NBA experiment (Figures 12 and 27).
package main

import (
	"fmt"
	"log"

	"github.com/rankregret/rankregret"
)

func main() {
	// Simulated stand-in for the paper's 21 961-row, 5-attribute NBA
	// dataset (see DESIGN.md Section 5 for why the simulation preserves
	// the experiment's behavior).
	nba := rankregret.SimNBA(2024, 0)
	fmt.Printf("database: %d player/seasons x %d stats %v\n", nba.N(), nba.Dim(), nba.Attrs())

	const r = 10
	sol, err := rankregret.Solve(nba, r, &rankregret.Options{Algorithm: rankregret.AlgoHDRRM})
	if err != nil {
		log.Fatal(err)
	}
	est, err := rankregret.EvaluateRankRegret(nba, sol.IDs, nil, 50000, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("short list (r=%d), HDRRM: grid-guaranteed k=%d, estimated rank-regret %d\n",
		r, sol.RankRegret, est)
	for _, id := range sol.IDs {
		row := nba.Row(id)
		fmt.Printf("  player %5d:", id)
		for j, v := range row {
			fmt.Printf(" %s=%.2f", nba.Attrs()[j], v)
		}
		fmt.Println()
	}

	// Compare against the baselines the paper evaluates (Figure 27): the
	// heuristic MDRC is fast but can have far worse output quality, and
	// the regret-ratio solver MDRMS optimizes the wrong objective.
	fmt.Println("\nbaseline comparison (same budget):")
	for _, algo := range []rankregret.Algorithm{rankregret.AlgoMDRRRr, rankregret.AlgoMDRC, rankregret.AlgoMDRMS} {
		b, err := rankregret.Solve(nba, r, &rankregret.Options{Algorithm: algo})
		if err != nil {
			log.Fatal(err)
		}
		bEst, err := rankregret.EvaluateRankRegret(nba, b.IDs, nil, 50000, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s |S|=%2d estimated rank-regret %d\n", algo, len(b.IDs), bEst)
	}

	// On two attributes (the paper's Figure 12 setting) the exact 2D
	// solver applies; NBA's strong positive correlation makes a
	// rank-regret of 1 achievable.
	two, err := nba.Project([]int{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	sol2, err := rankregret.Solve(two, 5, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n2-attribute projection, r=5: exact rank-regret %d (the paper observes 1 on NBA)\n",
		sol2.RankRegret)
}
