// Restricted: the RRRM problem. When something is known about user
// preferences — here the "weak ranking" constraint that attribute 1 matters
// at least as much as attribute 2, which matters at least as much as
// attribute 3 — restricting the utility space shrinks the adversary and
// yields representative sets with much lower rank-regret (the paper's
// Figures 25-26).
package main

import (
	"fmt"
	"log"

	"github.com/rankregret/rankregret"
)

func main() {
	ds := rankregret.GenerateAnticorrelated(7, 20000, 4)
	const r = 10

	// Plain RRM: the adversary may use any non-negative weights.
	full, err := rankregret.Solve(ds, r, &rankregret.Options{Algorithm: rankregret.AlgoHDRRM})
	if err != nil {
		log.Fatal(err)
	}
	fullEst, err := rankregret.EvaluateRankRegret(ds, full.IDs, nil, 50000, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RRM  (full space):        estimated rank-regret %4d\n", fullEst)

	// RRRM with the weak-ranking cone u[0] >= u[1] >= u[2] (c = 2, the
	// paper's Section VI.B.5 setting).
	cone, err := rankregret.WeakRankingSpace(ds.Dim(), 2)
	if err != nil {
		log.Fatal(err)
	}
	restricted, err := rankregret.Solve(ds, r, &rankregret.Options{
		Algorithm: rankregret.AlgoHDRRM,
		Space:     cone,
	})
	if err != nil {
		log.Fatal(err)
	}
	restEst, err := rankregret.EvaluateRankRegret(ds, restricted.IDs, cone, 50000, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RRRM (weak ranking, c=2): estimated rank-regret %4d\n", restEst)
	fmt.Println("=> fewer possible preferences, a lower regret level for those users.")

	// RRRM also accepts an estimated utility vector plus uncertainty: a
	// ball around the output of a preference-learning step.
	ball, err := rankregret.BallSpace([]float64{0.4, 0.3, 0.2, 0.1}, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	ballSol, err := rankregret.Solve(ds, r, &rankregret.Options{
		Algorithm: rankregret.AlgoHDRRM,
		Space:     ball,
	})
	if err != nil {
		log.Fatal(err)
	}
	ballEst, err := rankregret.EvaluateRankRegret(ds, ballSol.IDs, ball, 50000, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RRRM (ball around a mined vector, radius 0.08): estimated rank-regret %4d\n", ballEst)

	// The candidate sets shrink correspondingly (Theorem 3): the
	// restricted skyline is a subset of the skyline.
	sky := rankregret.Skyline(ds)
	usky, err := rankregret.RestrictedSkyline(ds, cone)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncandidates: |skyline| = %d, |U-skyline| = %d (Theorem 3)\n", len(sky), len(usky))
}
