// Cars: the paper's introductory scenario. Alice browses a car database
// with horse power (HP) and fuel economy (MPG) — attributes that trade off
// against each other — and wants a short list guaranteed to contain a
// near-top car for *any* linear weighting of the two.
//
// The example also demonstrates Theorem 1 (shift invariance): converting
// MPG to a shifted scale changes nothing about the RRM answer, while the
// classical regret-ratio (RMS) answer flips — the paper's Figure 1 vs 2.
package main

import (
	"fmt"
	"log"

	"github.com/rankregret/rankregret"
)

func main() {
	// A synthetic car catalogue: 2 000 cars on the HP/MPG trade-off curve
	// with noise (anti-correlated, like real engine data).
	cars := rankregret.GenerateAnticorrelated(11, 2000, 2)
	if err := cars.SetAttrs([]string{"MPG", "HP"}); err != nil {
		log.Fatal(err)
	}

	const r = 5
	sol, err := rankregret.Solve(cars, r, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("short list of %d cars out of %d, exact rank-regret %d:\n",
		len(sol.IDs), cars.N(), sol.RankRegret)
	for _, id := range sol.IDs {
		fmt.Printf("  car %4d: MPG=%.3f HP=%.3f\n", id, cars.Value(id, 0), cars.Value(id, 1))
	}
	fmt.Printf("=> whatever weights Alice uses, one of these %d cars ranks in her top %d of all %d cars.\n\n",
		r, sol.RankRegret, cars.N())

	// Shift invariance (Theorem 1): shift MPG by +4 "scale units" — the
	// dataset is essentially unchanged, and so is the RRM solution.
	shifted := cars.Clone()
	shifted.Shift([]float64{4, 0})
	sol2, err := rankregret.Solve(shifted, r, nil)
	if err != nil {
		log.Fatal(err)
	}
	same := len(sol.IDs) == len(sol2.IDs)
	if same {
		for i := range sol.IDs {
			if sol.IDs[i] != sol2.IDs[i] {
				same = false
				break
			}
		}
	}
	fmt.Printf("after shifting MPG by +4: rank-regret %d, identical solution: %v (Theorem 1)\n\n",
		sol2.RankRegret, same)

	// Contrast: a regret-ratio greedy (the RMS objective) on the original
	// vs the shifted data. RMS is not shift invariant, so its rank-regret
	// can degrade badly after a shift.
	for _, tc := range []struct {
		name string
		ds   *rankregret.Dataset
	}{{"original", cars}, {"shifted", shifted}} {
		rms, err := rankregret.Solve(tc.ds, r, &rankregret.Options{Algorithm: rankregret.AlgoRMSGreedy})
		if err != nil {
			log.Fatal(err)
		}
		rr, err := rankregret.EvaluateRankRegret2D(tc.ds, rms.IDs, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("RMS greedy on %-8s data: rank-regret %d\n", tc.name, rr)
	}
	fmt.Println("=> minimizing regret-ratio does not minimize rank-regret, and shifting changes its answer.")
}
