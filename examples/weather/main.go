// Weather: how big must the representative set be? A dashboard can only
// show so many monitoring stations; this example sweeps the output budget r
// on the (simulated) 4-attribute Weather dataset and reports the achieved
// rank-regret both absolutely and as a percentile of the dataset — the
// paper's suggested normalization ("top 1% by citations") — showing the
// diminishing returns that let an operator pick the smallest budget that
// meets a percentile target.
package main

import (
	"fmt"
	"log"

	"github.com/rankregret/rankregret"
)

func main() {
	ds := rankregret.SimWeather(7, 20000)
	fmt.Printf("dataset: %d stations x %d attributes %v\n\n", ds.N(), ds.Dim(), ds.Attrs())

	// The skyline is the candidate set (Theorem 3) and a natural upper
	// reference: with the whole skyline the rank-regret is 1 by definition.
	sky := rankregret.Skyline(ds)
	fmt.Printf("skyline: %d tuples (rank-regret 1, but far too many to display)\n\n", len(sky))

	fmt.Println("budget sweep (HDRRM):")
	fmt.Printf("  %3s  %10s  %12s  %10s\n", "r", "regret<=", "estimated", "percentile")
	for _, r := range []int{5, 8, 10, 15, 20, 30} {
		sol, err := rankregret.Solve(ds, r, &rankregret.Options{
			Algorithm:  rankregret.AlgoHDRRM,
			MaxSamples: 8000,
		})
		if err != nil {
			log.Fatal(err)
		}
		est, err := rankregret.EvaluateRankRegret(ds, sol.IDs, nil, 30000, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3d  %10d  %12d  %9.3f%%\n",
			r, sol.RankRegret, est, 100*float64(est)/float64(ds.N()))
	}

	// The dual view: fix a percentile target instead of a budget. "Every
	// user must find a top-0.1% station" means k = n/1000.
	k := ds.N() / 1000
	dual, err := rankregret.SolveRRR(ds, k, &rankregret.Options{MaxSamples: 8000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndual (RRR): guaranteeing top-%d (0.1%%) needs about %d tuples\n", k, len(dual.IDs))
}
