// Quickstart: solve RRM on the paper's Table I example and on a synthetic
// 4-attribute workload, showing both the exact 2D solver and HDRRM.
package main

import (
	"fmt"
	"log"

	"github.com/rankregret/rankregret"
)

func main() {
	// The paper's running example (Table I): seven cars over two
	// attributes. For r = 1 the RRM optimum is t3 = (0.57, 0.75).
	rows := [][]float64{
		{0, 1},       // t1
		{0.4, 0.95},  // t2
		{0.57, 0.75}, // t3
		{0.79, 0.6},  // t4
		{0.2, 0.5},   // t5
		{0.35, 0.3},  // t6
		{1, 0},       // t7
	}
	ds, err := rankregret.NewDataset(rows)
	if err != nil {
		log.Fatal(err)
	}

	sol, err := rankregret.Solve(ds, 1, nil) // d = 2 -> exact 2D DP
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table I, r=1: chose t%d, rank-regret %d (exact=%v)\n",
		sol.IDs[0]+1, sol.RankRegret, sol.Exact)

	sol3, err := rankregret.Solve(ds, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table I, r=3: chose %v, rank-regret %d\n", tupleNames(sol3.IDs), sol3.RankRegret)

	// A bigger high-dimensional instance: 5 000 anti-correlated tuples
	// over 4 attributes, solved with HDRRM.
	big := rankregret.GenerateAnticorrelated(42, 5000, 4)
	solHD, err := rankregret.Solve(big, 10, &rankregret.Options{Algorithm: rankregret.AlgoHDRRM})
	if err != nil {
		log.Fatal(err)
	}
	est, err := rankregret.EvaluateRankRegret(big, solHD.IDs, nil, 20000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anti-correlated n=5000 d=4, r=10 (HDRRM): |S|=%d, guaranteed k=%d on the grid, estimated rank-regret %d (%.2f%% of n)\n",
		len(solHD.IDs), solHD.RankRegret, est, 100*float64(est)/float64(big.N()))
}

func tupleNames(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = fmt.Sprintf("t%d", id+1)
	}
	return out
}
