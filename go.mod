module github.com/rankregret/rankregret

go 1.24
