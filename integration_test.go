package rankregret_test

import (
	"bytes"
	"math"
	"testing"

	"github.com/rankregret/rankregret"
)

// TestPipelineCSVRoundTripSolve exercises the full user journey: generate a
// workload, serialize to CSV, read it back, normalize, solve, and verify
// the solution independently — the same path the cmd/datagen + cmd/rrm
// tools take.
func TestPipelineCSVRoundTripSolve(t *testing.T) {
	orig := rankregret.GenerateAnticorrelated(3, 600, 3)
	var buf bytes.Buffer
	if err := rankregret.WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	ds, err := rankregret.ReadCSV(&buf, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds.Normalize()
	sol, err := rankregret.Solve(ds, 8, &rankregret.Options{MaxSamples: 2000})
	if err != nil {
		t.Fatal(err)
	}
	est, err := rankregret.EvaluateRankRegret(ds, sol.IDs, nil, 10000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if est < 1 || est > ds.N() {
		t.Errorf("estimated rank-regret %d out of range", est)
	}
	// The solver's own bound and an independent estimate should be in the
	// same ballpark (Theorems 6/7: the discretization approximates L).
	if sol.RankRegret > 0 && est > 4*sol.RankRegret+20 {
		t.Errorf("estimate %d far above the solver's bound %d", est, sol.RankRegret)
	}
}

// TestSolutionsAreSkylineSubsets verifies Theorem 3 end to end: every
// solver output consists of candidate (skyline) tuples only — any
// non-skyline member could be replaced by a dominator without hurting the
// rank-regret, and the solvers exploit exactly that.
func TestSolutionsAreSkylineSubsets(t *testing.T) {
	ds := rankregret.GenerateAnticorrelated(13, 800, 2)
	onSkyline := map[int]bool{}
	for _, id := range rankregret.Skyline(ds) {
		onSkyline[id] = true
	}
	sol, err := rankregret.Solve(ds, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sol.IDs {
		if !onSkyline[id] {
			t.Errorf("2DRRM chose non-skyline tuple %d", id)
		}
	}
}

// TestRestrictedCandidatesSubset verifies the restricted half of Theorem 3:
// the U-skyline is contained in the skyline, and RRRM solutions stay within
// the U-skyline's closure under the solver's candidate logic.
func TestRestrictedCandidatesSubset(t *testing.T) {
	ds := rankregret.GenerateIndependent(29, 500, 3)
	cone, err := rankregret.WeakRankingSpace(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	sky := map[int]bool{}
	for _, id := range rankregret.Skyline(ds) {
		sky[id] = true
	}
	usky, err := rankregret.RestrictedSkyline(ds, cone)
	if err != nil {
		t.Fatal(err)
	}
	if len(usky) == 0 {
		t.Fatal("empty U-skyline")
	}
	for _, id := range usky {
		if !sky[id] {
			t.Errorf("U-skyline tuple %d not on the skyline", id)
		}
	}
}

// TestLowerBoundTheorem2 verifies the paper's adversarial construction end
// to end: on the quarter-circle dataset, the optimal size-r set still has
// rank-regret Omega(n/r).
func TestLowerBoundTheorem2(t *testing.T) {
	const n, r = 600, 4
	ds := rankregret.GenerateQuarterCircle(n, 2)
	sol, err := rankregret.Solve(ds, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 2's constant: at least one angular gap is >= pi/(2(r+1)), and
	// tuples are spaced pi/(2(n-1)) apart, so the optimum is at least about
	// (n-1)/(r+1) tuples inside the gap, halved below to be safe against
	// boundary effects.
	floor := (n - 1) / (2 * (r + 1))
	if sol.RankRegret < floor {
		t.Errorf("optimal rank-regret %d below the Theorem 2 floor %d", sol.RankRegret, floor)
	}
}

// TestTwoSolversAgreeIn2D cross-validates HDRRM against the exact 2D DP:
// HDRRM cannot beat the optimum, and on easy data it should land within a
// small factor of it.
func TestTwoSolversAgreeIn2D(t *testing.T) {
	ds := rankregret.GenerateIndependent(41, 1000, 2)
	exact, err := rankregret.Solve(ds, 6, &rankregret.Options{Algorithm: rankregret.AlgoTwoDRRM})
	if err != nil {
		t.Fatal(err)
	}
	hd, err := rankregret.Solve(ds, 6, &rankregret.Options{Algorithm: rankregret.AlgoHDRRM, MaxSamples: 4000})
	if err != nil {
		t.Fatal(err)
	}
	hdExact, err := rankregret.EvaluateRankRegret2D(ds, hd.IDs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hdExact < exact.RankRegret {
		t.Errorf("HDRRM output has exact regret %d below the DP optimum %d — DP is not optimal?",
			hdExact, exact.RankRegret)
	}
	if hdExact > 10*exact.RankRegret+10 {
		t.Errorf("HDRRM exact regret %d far above the optimum %d", hdExact, exact.RankRegret)
	}
}

// TestDualAndPrimalConsistency: solving RRM with budget r yields regret k;
// solving RRR with threshold k must need at most r tuples (in 2D both are
// exact, so this is a hard invariant, not a heuristic check).
func TestDualAndPrimalConsistency(t *testing.T) {
	ds := rankregret.GenerateAnticorrelated(51, 700, 2)
	for _, r := range []int{2, 4, 6} {
		primal, err := rankregret.Solve(ds, r, nil)
		if err != nil {
			t.Fatal(err)
		}
		dual, err := rankregret.SolveRRR(ds, primal.RankRegret, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(dual.IDs) > r {
			t.Errorf("r=%d: RRM achieved k=%d but RRR(k) needs %d > r tuples",
				r, primal.RankRegret, len(dual.IDs))
		}
		if dual.RankRegret > primal.RankRegret {
			t.Errorf("r=%d: RRR returned regret %d above its threshold %d",
				r, dual.RankRegret, primal.RankRegret)
		}
	}
}

// TestMonotonicityInBudget: the optimal rank-regret is non-increasing in r
// (supersets can only help; Definition 2's monotonicity).
func TestMonotonicityInBudget(t *testing.T) {
	ds := rankregret.GenerateAnticorrelated(61, 900, 2)
	prev := math.MaxInt
	for r := 1; r <= 8; r++ {
		sol, err := rankregret.Solve(ds, r, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sol.RankRegret > prev {
			t.Errorf("optimal regret increased from %d to %d when r grew to %d", prev, sol.RankRegret, r)
		}
		prev = sol.RankRegret
	}
}

// TestPreferenceSamplerEndToEnd: the public Sampler hooks compose with
// Solve and concentrate quality where the users are.
func TestPreferenceSamplerEndToEnd(t *testing.T) {
	ds := rankregret.GenerateAnticorrelated(71, 1500, 3)
	a, err := rankregret.GaussianPreference([]float64{0.8, 0.15, 0.05}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rankregret.GaussianPreference([]float64{0.05, 0.15, 0.8}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := rankregret.MixturePreference([]float64{1, 1}, []rankregret.Sampler{a, b})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := rankregret.Solve(ds, 8, &rankregret.Options{
		Algorithm:  rankregret.AlgoHDRRM,
		Sampler:    mix,
		MaxSamples: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.IDs) == 0 || len(sol.IDs) > 8 {
		t.Fatalf("|S| = %d", len(sol.IDs))
	}
	// Quality near each archetype should be decent even though the
	// full-space regret on anti-correlated data is large.
	ball1, err := rankregret.BallSpace([]float64{0.8, 0.15, 0.08}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rankregret.EvaluateRankRegret(ds, sol.IDs, ball1, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got > ds.N()/4 {
		t.Errorf("regret near archetype A = %d, suspiciously bad", got)
	}
}

// TestSolveVariantPublicAPI exercises the ablation entry point.
func TestSolveVariantPublicAPI(t *testing.T) {
	ds := rankregret.GenerateIndependent(81, 400, 3)
	for _, v := range []rankregret.HDRRMVariant{
		{}, {NoBasis: true}, {NoGrid: true}, {NoSamples: true},
	} {
		sol, err := rankregret.SolveVariant(ds, 6, &rankregret.Options{MaxSamples: 1000}, v)
		if err != nil {
			t.Errorf("%s: %v", v.Name(), err)
			continue
		}
		if len(sol.IDs) == 0 || len(sol.IDs) > 6 {
			t.Errorf("%s: |S| = %d", v.Name(), len(sol.IDs))
		}
	}
	if _, err := rankregret.SolveVariant(ds, 6, nil, rankregret.HDRRMVariant{NoGrid: true, NoSamples: true}); err == nil {
		t.Error("impossible variant should fail")
	}
	if _, err := rankregret.SolveVariant(nil, 6, nil, rankregret.HDRRMVariant{}); err == nil {
		t.Error("nil dataset should fail")
	}
	if _, err := rankregret.SolveVariant(ds, 0, nil, rankregret.HDRRMVariant{}); err == nil {
		t.Error("r=0 should fail")
	}
}

// TestAdaptiveEstimatorPublicAPI checks the adaptive evaluator against the
// exact 2D sweep through the public API.
func TestAdaptiveEstimatorPublicAPI(t *testing.T) {
	ds := rankregret.GenerateAnticorrelated(91, 800, 2)
	sol, err := rankregret.Solve(ds, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := rankregret.EvaluateRankRegret2D(ds, sol.IDs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ada, err := rankregret.EvaluateRankRegretAdaptive(ds, sol.IDs, nil, 4000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ada > exact {
		t.Errorf("adaptive estimate %d exceeds exact %d", ada, exact)
	}
	if ada < exact-2 {
		t.Errorf("adaptive estimate %d too far below exact %d", ada, exact)
	}
}

// TestRMSShiftVarianceTableI pins the paper's motivating example (Section
// II, Figures 1-2): on Table I the RMS objective picks t4; after shifting
// attribute A2 by +4 — which changes nothing about the data's order
// structure — RMS flips to t7, the tuple with the worst rank on A2, while
// RRM stays on t3 (Theorem 1).
func TestRMSShiftVarianceTableI(t *testing.T) {
	ds, err := rankregret.NewDataset([][]float64{
		{0, 1}, {0.4, 0.95}, {0.57, 0.75}, {0.79, 0.6}, {0.2, 0.5}, {0.35, 0.3}, {1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	rms, err := rankregret.Solve(ds, 1, &rankregret.Options{Algorithm: rankregret.AlgoRMSGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if len(rms.IDs) != 1 || rms.IDs[0] != 3 {
		t.Errorf("RMS on Table I chose %v, paper says t4 (id 3)", rms.IDs)
	}
	shifted := ds.Clone()
	shifted.Shift([]float64{0, 4})
	rms2, err := rankregret.Solve(shifted, 1, &rankregret.Options{Algorithm: rankregret.AlgoRMSGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if len(rms2.IDs) != 1 || rms2.IDs[0] != 6 {
		t.Errorf("RMS on shifted Table I chose %v, paper says t7 (id 6)", rms2.IDs)
	}
	rrm, err := rankregret.Solve(shifted, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrm.IDs) != 1 || rrm.IDs[0] != 2 {
		t.Errorf("RRM on shifted Table I chose %v, want t3 (id 2)", rrm.IDs)
	}
}
