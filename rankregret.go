// Package rankregret implements the rank-regret minimization (RRM) problem
// and its restricted variant (RRRM) from "Rank-Regret Minimization",
// Xiao & Li, ICDE 2022 (arXiv:2111.08563).
//
// Given a dataset D of n tuples over d numeric attributes, RRM asks for a
// subset S of at most r tuples that minimizes the maximum, over every linear
// utility function u >= 0, of the best rank any member of S achieves in the
// list of D sorted by u. Intuitively: no matter which (unknown) linear
// preference a user holds, S contains a tuple ranked at most RankRegret(S)
// for that preference. RRRM restricts the adversary to a convex sub-space U
// of utility vectors (e.g. "attribute 1 matters at least as much as
// attribute 2").
//
// The package exposes two solvers from the paper:
//
//   - TwoDRRM: an exact O(n^2 log n) dynamic program over convex chains in
//     dual space, for d = 2 (RRM is in P for two attributes).
//   - HDRRM: for any d, a double-approximation algorithm that discretizes
//     the utility sphere into samples plus a polar grid and solves a
//     sequence of greedy set covers (ASMS).
//
// plus the baselines the paper evaluates against (TwoDRRRBaseline, MDRRRr,
// MDRC, MDRMS), an evaluation toolbox, workload generators, and utility
// function spaces for RRRM. Everything is stdlib-only.
//
// Quick start:
//
//	ds, _ := rankregret.NewDataset(rows) // rows [][]float64, larger = better
//	sol, err := rankregret.Solve(ds, 5, nil)
//	fmt.Println(sol.IDs, sol.RankRegret)
package rankregret

import (
	"context"
	"errors"
	"fmt"
	"io"

	"github.com/rankregret/rankregret/internal/algo2d"
	"github.com/rankregret/rankregret/internal/algohd"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/engine"
	"github.com/rankregret/rankregret/internal/eval"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/skyline"
	"github.com/rankregret/rankregret/internal/topk"
	"github.com/rankregret/rankregret/internal/xrand"
)

// Dataset is a row-major matrix of n tuples over d attributes, where on
// every attribute a larger value is preferred. Use Normalize to map each
// attribute to [0, 1] (the paper's setting), Negate for smaller-is-better
// attributes, and Shift to test shift invariance.
//
// Datasets are versioned and mutable: Append and Delete bump a monotone
// Version and record structured deltas (Deltas), and Snapshot takes a cheap
// same-lineage copy, which is how serving layers mutate without disturbing
// solves in flight. The engine repairs its cached per-vector top-K state
// incrementally across append/delete deltas, so solves after a small
// mutation skip most of the cold-build cost with bit-identical results.
type Dataset = dataset.Dataset

// NewDataset builds a Dataset from rows. All rows must have the same,
// non-zero number of attributes.
func NewDataset(rows [][]float64) (*Dataset, error) { return dataset.FromRows(rows) }

// ReadCSV reads a dataset from CSV. If header is true the first record
// names the attributes. Columns listed in negate are treated as
// smaller-is-better and negated on load (rank-regret is shift invariant, so
// no further re-scaling is needed; see Theorem 1).
func ReadCSV(r io.Reader, header bool, negate []int) (*Dataset, error) {
	ds, err := dataset.ReadCSV(r, header)
	if err != nil {
		return nil, err
	}
	for _, j := range negate {
		if j < 0 || j >= ds.Dim() {
			return nil, fmt.Errorf("rankregret: negate column %d out of range [0, %d)", j, ds.Dim())
		}
		ds.Negate(j)
	}
	return ds, nil
}

// WriteCSV writes a dataset as CSV with an attribute-name header.
func WriteCSV(w io.Writer, ds *Dataset) error { return ds.WriteCSV(w, true) }

// Space is a convex sub-space of the non-negative orthant of utility
// vectors, used to restrict RRRM. Implementations in this package: the full
// orthant, weak-ranking cones, convex polytopes, and balls around an
// estimated vector.
type Space = funcspace.Space

// FullSpace returns the unrestricted space L of all non-negative utility
// vectors in d dimensions. Solving with FullSpace is plain RRM.
func FullSpace(d int) Space { return funcspace.NewFull(d) }

// WeakRankingSpace returns the cone {u >= 0 : u[0] >= u[1] >= ... >= u[c]},
// the "weak rankings" restriction the paper uses in its RRRM experiments
// (Section VI.B.5): the first c+1 attributes are in non-increasing order of
// importance.
func WeakRankingSpace(d, c int) (Space, error) { return funcspace.WeakRanking(d, c) }

// PolytopeSpace returns the utility space {u >= 0 : A u <= b} (a convex
// polytope cone cross-section), the most general restriction supported.
func PolytopeSpace(d int, a [][]float64, b []float64) (Space, error) {
	return funcspace.NewPolytope(d, a, b)
}

// BallSpace returns the set of directions within L2 distance radius of the
// (normalized) center vector — the "estimated vector plus uncertainty"
// restriction of Mouratidis et al.
func BallSpace(center []float64, radius float64) (Space, error) {
	return funcspace.NewBall(center, radius)
}

// Algorithm selects a solver by its name in the engine registry.
type Algorithm string

// Available algorithms. Auto picks TwoDRRM for d = 2 and HDRRM otherwise.
const (
	Auto            Algorithm = ""
	AlgoTwoDRRM     Algorithm = engine.AlgoTwoDRRM     // exact DP, d = 2 only
	AlgoHDRRM       Algorithm = engine.AlgoHDRRM       // double approximation, any d
	AlgoTwoDRRR     Algorithm = engine.AlgoTwoDRRR     // Asudeh et al. 2D baseline, d = 2 only
	AlgoMDRRRr      Algorithm = engine.AlgoMDRRRr      // randomized k-set baseline
	AlgoMDRC        Algorithm = engine.AlgoMDRC        // space-partition heuristic baseline
	AlgoMDRMS       Algorithm = engine.AlgoMDRMS       // regret-ratio (RMS) baseline
	AlgoMDRRR       Algorithm = engine.AlgoMDRRR       // deterministic k-set baseline (small n only)
	AlgoRMSGreedy   Algorithm = engine.AlgoRMSGreedy   // classic greedy RMS
	AlgoSkylineOnly Algorithm = engine.AlgoSkylineOnly // returns the first r skyline tuples (naive)
)

// Algorithms returns the names of every solver registered with the engine,
// sorted. Each name is a valid Options.Algorithm value.
func Algorithms() []Algorithm {
	names := engine.Algorithms()
	out := make([]Algorithm, len(names))
	for i, n := range names {
		out[i] = Algorithm(n)
	}
	return out
}

// Options configures Solve. The zero value (and nil) mean: pick the
// algorithm automatically, solve plain RRM with the paper's default
// parameters, seed 1.
type Options struct {
	// Algorithm selects a solver; Auto picks by dimensionality.
	Algorithm Algorithm
	// Space restricts the utility space (nil = full orthant = RRM).
	Space Space
	// Gamma is HDRRM's polar-grid resolution (0 = paper default 6).
	Gamma int
	// Delta is HDRRM's error probability from Theorem 10 (0 = paper
	// default 0.03). Smaller delta means more samples and lower regret.
	Delta float64
	// Samples overrides HDRRM's sample count m (0 = Theorem 10 formula).
	Samples int
	// MaxSamples caps the Theorem 10 formula so huge instances stay
	// tractable (0 = library default 50 000; negative = uncapped).
	MaxSamples int
	// Seed drives all randomness. 0 means seed 1, so results are
	// reproducible by default.
	Seed int64
	// NoVecSetCache opts out of the engine's shared vector-set tier, which
	// otherwise retains the expensive per-dataset discretization (sampled
	// directions plus top-K lists, potentially hundreds of MB for very
	// large datasets) across solves to make parameter sweeps cheap.
	// Results are identical either way; set this when solving huge
	// datasets once and memory matters more than sweep speed.
	NoVecSetCache bool
	// Sampler overrides the user-preference distribution HDRRM samples
	// its directions from (nil = uniform on the space), the paper's
	// Section V.C generalization. See GaussianPreference and
	// MixturePreference.
	Sampler Sampler
	// Parallelism bounds the worker goroutines HDRRM's top-K scoring
	// passes — the dominant cost of a cold solve — may use (0 =
	// GOMAXPROCS). Results are bit-identical at every setting; the knob
	// trades latency for CPU share, e.g. in a daemon running many solves
	// concurrently.
	Parallelism int
}

// Sampler draws one utility direction; it models a non-uniform user
// preference distribution for HDRRM (paper Section V.C).
type Sampler = algohd.Sampler

// GaussianPreference returns a Sampler around a central preference vector
// with isotropic Gaussian noise sigma, projected back to the unit sphere.
func GaussianPreference(center []float64, sigma float64) (Sampler, error) {
	return algohd.GaussianPreference(center, sigma)
}

// MixturePreference returns a Sampler over a finite mixture of samplers
// with the given non-negative weights — a population of user archetypes.
func MixturePreference(weights []float64, samplers []Sampler) (Sampler, error) {
	return algohd.MixturePreference(weights, samplers)
}

// HDRRMVariant selects an HDRRM ablation for SolveVariant: the zero value
// is the full algorithm, and each field removes one ingredient (the forced
// basis, the polar grid Db, or the sampled directions Da). Ablations give
// up parts of Theorem 10's guarantee; see EXPERIMENTS.md.
type HDRRMVariant = algohd.Variant

// SolveVariant runs an HDRRM ablation (see HDRRMVariant). Library users
// solving real problems should call Solve; this entry point exists for the
// ablation benchmarks and for studying the algorithm's design choices.
func SolveVariant(ds *Dataset, r int, opts *Options, v HDRRMVariant) (*Solution, error) {
	return SolveVariantContext(context.Background(), ds, r, opts, v)
}

// SolveVariantContext is SolveVariant with a context: cancelling ctx aborts
// the solve from inside its hot loops.
func SolveVariantContext(ctx context.Context, ds *Dataset, r int, opts *Options, v HDRRMVariant) (*Solution, error) {
	if ds == nil || ds.N() == 0 {
		return nil, errors.New("rankregret: empty dataset")
	}
	if r < 1 {
		return nil, fmt.Errorf("rankregret: output size r = %d, need >= 1", r)
	}
	o := opts.orDefault()
	sol, err := engine.Default.SolveWith(ctx, ds, r, engine.VariantSolver(v), o.engineOptions())
	if err != nil {
		return nil, translateEngineErr(err)
	}
	return fromEngine(sol), nil
}

func (o *Options) orDefault() Options {
	var v Options
	if o != nil {
		v = *o
	}
	if v.Seed == 0 {
		v.Seed = 1
	}
	return v
}

// engineOptions converts the public Options to the engine's option struct.
func (o Options) engineOptions() engine.Options {
	return engine.Options{
		Space:         o.Space,
		Gamma:         o.Gamma,
		Delta:         o.Delta,
		Samples:       o.Samples,
		MaxSamples:    o.MaxSamples,
		Seed:          o.Seed,
		Sampler:       o.Sampler,
		NoVecSetCache: o.NoVecSetCache,
		Parallelism:   o.Parallelism,
	}
}

// translateEngineErr maps engine sentinel errors to this package's public
// ones so callers comparing against ErrDimension keep working.
func translateEngineErr(err error) error {
	if errors.Is(err, engine.ErrDimension) {
		return ErrDimension
	}
	return err
}

// fromEngine converts an engine Solution to the public shape.
func fromEngine(s *engine.Solution) *Solution {
	return &Solution{
		IDs:        s.IDs,
		RankRegret: s.RankRegret,
		Exact:      s.Exact,
		Algorithm:  Algorithm(s.Algorithm),
	}
}

// Solution is the output of Solve and SolveRRR.
type Solution struct {
	// IDs are the chosen tuple indices into the dataset, ascending.
	IDs []int
	// RankRegret is the solver's reported rank-regret of IDs: exact over
	// the whole space for the 2D DP, or the guaranteed threshold k with
	// respect to the discretized space for HDRRM (Theorem 10). Baselines
	// report their internal bound or 0 when they have none. Use
	// EvaluateRankRegret for an independent estimate.
	RankRegret int
	// Exact records whether RankRegret is exact over the full space.
	Exact bool
	// Algorithm is the solver that produced the solution.
	Algorithm Algorithm
}

// ErrDimension is returned when a 2D-only solver is applied to d != 2.
var ErrDimension = errors.New("rankregret: algorithm requires a 2-dimensional dataset")

// Solve computes a size-r rank-regret minimizing subset of ds. With nil
// opts it runs the paper's primary algorithm for the dataset's
// dimensionality: the exact 2D dynamic program when d = 2, HDRRM otherwise.
// Dispatch goes through the engine registry (internal/engine): repeated
// identical solves are answered from its LRU solution cache.
func Solve(ds *Dataset, r int, opts *Options) (*Solution, error) {
	return SolveContext(context.Background(), ds, r, opts)
}

// SolveContext is Solve with a context: cancelling ctx (or exceeding its
// deadline) aborts the solve from inside the algorithms' hot loops and
// returns ctx.Err().
func SolveContext(ctx context.Context, ds *Dataset, r int, opts *Options) (*Solution, error) {
	if ds == nil || ds.N() == 0 {
		return nil, errors.New("rankregret: empty dataset")
	}
	if r < 1 {
		return nil, fmt.Errorf("rankregret: output size r = %d, need >= 1", r)
	}
	o := opts.orDefault()
	sol, err := engine.Default.Solve(ctx, ds, r, string(o.Algorithm), o.engineOptions())
	if err != nil {
		return nil, translateEngineErr(err)
	}
	return fromEngine(sol), nil
}

// SolveSweep solves the same dataset for several output budgets rs in one
// call and returns one solution per budget, in order. Sweeps are cheap: the
// engine's VecSet cache tier shares the expensive function-space
// discretization (polar grid, sample stream, per-vector top-K lists) across
// every budget, so each point after the first costs only its set-cover
// search — orders of magnitude less than a cold solve. Each solution is
// identical to the corresponding Solve(ds, r, opts) call.
func SolveSweep(ds *Dataset, rs []int, opts *Options) ([]*Solution, error) {
	return SolveSweepContext(context.Background(), ds, rs, opts)
}

// SolveSweepContext is SolveSweep with a context: cancelling ctx aborts the
// sweep from inside the current solve's hot loops.
func SolveSweepContext(ctx context.Context, ds *Dataset, rs []int, opts *Options) ([]*Solution, error) {
	if len(rs) == 0 {
		return nil, errors.New("rankregret: empty budget sweep")
	}
	out := make([]*Solution, len(rs))
	for i, r := range rs {
		sol, err := SolveContext(ctx, ds, r, opts)
		if err != nil {
			return nil, fmt.Errorf("rankregret: sweep r = %d: %w", r, err)
		}
		out[i] = sol
	}
	return out, nil
}

// SolveRRR solves the dual rank-regret representative problem: the minimum
// size set with rank-regret at most k. For d = 2 it is exact (a mode of the
// 2D DP); in HD it runs HDRRM's ASMS solver once at threshold k, inheriting
// its (1 + ln|D|) size approximation (Theorem 9).
//
// Options.Algorithm must name a solver that supports the dual problem
// (2drrm or hdrrm) or be Auto. Earlier releases silently ignored the field
// and always fell back to HDRRR; since the engine refactor a non-dual
// algorithm (e.g. mdrc) is an error, and 2drrm on d != 2 is ErrDimension.
func SolveRRR(ds *Dataset, k int, opts *Options) (*Solution, error) {
	return SolveRRRContext(context.Background(), ds, k, opts)
}

// SolveRRRContext is SolveRRR with a context (see SolveContext).
func SolveRRRContext(ctx context.Context, ds *Dataset, k int, opts *Options) (*Solution, error) {
	if ds == nil || ds.N() == 0 {
		return nil, errors.New("rankregret: empty dataset")
	}
	if k < 1 || k > ds.N() {
		return nil, fmt.Errorf("rankregret: threshold k = %d out of range [1, %d]", k, ds.N())
	}
	o := opts.orDefault()
	sol, err := engine.Default.SolveRRR(ctx, ds, k, string(o.Algorithm), o.engineOptions())
	if err != nil {
		return nil, translateEngineErr(err)
	}
	return fromEngine(sol), nil
}

// Skyline returns the indices of the skyline (Pareto-optimal) tuples of ds,
// the candidate set for RRM (Theorem 3).
func Skyline(ds *Dataset) []int { return skyline.Compute(ds) }

// RestrictedSkyline returns the U-skyline of ds under space (Definition 5),
// the candidate set for RRRM.
func RestrictedSkyline(ds *Dataset, space Space) ([]int, error) {
	return skyline.ComputeRestricted(ds, space)
}

// TopK returns the indices of the k highest-utility tuples of ds for the
// utility vector u, best first.
func TopK(ds *Dataset, u []float64, k int) []int { return topk.TopK(ds, u, k, nil) }

// Rank returns the 1-based rank of tuple id in ds under utility vector u.
func Rank(ds *Dataset, u []float64, id int) int { return topk.Rank(ds, u, id, nil) }

// EvaluateRankRegret estimates the rank-regret of the subset ids over space
// (nil = full orthant) by sampling utility directions, the estimator the
// paper uses to report output quality (100 000 samples there). For d = 2
// with the full space, prefer EvaluateRankRegret2D which is exact.
func EvaluateRankRegret(ds *Dataset, ids []int, space Space, samples int, seed int64) (int, error) {
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	return eval.RankRegret(ds, ids, space, samples, seed)
}

// EvaluateRankRegretAdaptive estimates like EvaluateRankRegret but spends
// half the budget refining around the worst directions found, which reaches
// the true maximum with far fewer samples. Still a lower bound.
func EvaluateRankRegretAdaptive(ds *Dataset, ids []int, space Space, samples int, seed int64) (int, error) {
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	return eval.RankRegretAdaptive(ds, ids, space, samples, seed)
}

// EvaluateRankRegret2D computes the exact rank-regret of ids for a
// 2-dimensional dataset via a plane sweep (space nil = full orthant).
func EvaluateRankRegret2D(ds *Dataset, ids []int, space Space) (int, error) {
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	return eval.RankRegret2DExact(ds, ids, space)
}

// EvaluateRegretRatio estimates the classical RMS regret-ratio of ids —
// max over sampled u of 1 - w(u, S)/w(u, D) — for comparing against
// regret-ratio minimizing baselines.
func EvaluateRegretRatio(ds *Dataset, ids []int, space Space, samples int, seed int64) (float64, error) {
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	return eval.RegretRatio(ds, ids, space, samples, seed)
}

// RatK estimates the k-ratio of ids (Section V.A): the fraction of utility
// directions for which ids contains a top-k tuple.
func RatK(ds *Dataset, ids []int, space Space, k, samples int, seed int64) (float64, error) {
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	return eval.RatK(ds, ids, space, k, samples, seed)
}

// TopKSets2D enumerates, exactly, every distinct top-k set any linear
// utility function can produce on a 2-dimensional dataset (the "k-sets" of
// combinatorial geometry). A set of tuples hits every k-set if and only if
// its rank-regret is at most k. The count grows super-linearly with n,
// which is why the k-set based solvers do not scale — this primitive exists
// for analysis and validation.
func TopKSets2D(ds *Dataset, k int) ([][]int, error) { return algo2d.KSets2D(ds, k) }

// RankRegretPercent normalizes a rank-regret to the paper's percentage
// form: a rank of k in a dataset of n tuples is the top 100*k/n percent
// ("highly cited papers rank in the top 1%").
func RankRegretPercent(k, n int) float64 {
	if n <= 0 {
		return 0
	}
	return 100 * float64(k) / float64(n)
}

// RatKCurve evaluates RatK for several thresholds in one sampling pass —
// the cumulative distribution of the set's rank-regret over the space.
func RatKCurve(ds *Dataset, ids []int, space Space, ks []int, samples int, seed int64) ([]float64, error) {
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	return eval.RatKCurve(ds, ids, space, ks, samples, seed)
}

// Workload generators (Borzsony-style synthetic data plus the simulated
// real datasets; see DESIGN.md Section 5 for the substitution rationale).

// GenerateIndependent returns n tuples with d independently uniform
// attributes.
func GenerateIndependent(seed int64, n, d int) *Dataset {
	return dataset.Independent(xrand.New(seed), n, d)
}

// GenerateCorrelated returns n tuples whose attributes are positively
// correlated (good tuples are good everywhere).
func GenerateCorrelated(seed int64, n, d int) *Dataset {
	return dataset.Correlated(xrand.New(seed), n, d)
}

// GenerateAnticorrelated returns n tuples whose attributes trade off
// against each other, the hardest workload for representative queries.
func GenerateAnticorrelated(seed int64, n, d int) *Dataset {
	return dataset.Anticorrelated(xrand.New(seed), n, d)
}

// GenerateQuarterCircle returns the adversarial dataset of Theorem 2: n
// points on the unit quarter circle, for which every size-r subset has
// rank-regret Omega(n/r).
func GenerateQuarterCircle(n, d int) *Dataset { return dataset.QuarterCircle(n, d) }

// SimIsland returns a simulated stand-in for the paper's 2D Island dataset
// (63 383 geographic points; pass n <= 0 for the full size).
func SimIsland(seed int64, n int) *Dataset { return dataset.SimIsland(xrand.New(seed), n) }

// SimNBA returns a simulated stand-in for the paper's 5-attribute NBA
// dataset (21 961 player/season rows; pass n <= 0 for the full size).
func SimNBA(seed int64, n int) *Dataset { return dataset.SimNBA(xrand.New(seed), n) }

// SimWeather returns a simulated stand-in for the paper's 4-attribute
// Weather dataset (178 080 rows; pass n <= 0 for the full size).
func SimWeather(seed int64, n int) *Dataset { return dataset.SimWeather(xrand.New(seed), n) }
