#!/usr/bin/env bash
# Chaos smoke: boot rrmd with a scripted disk fault (-fault-inject), drive it
# into degraded mode over HTTP, and verify the degraded-mode contract end to
# end against a real daemon process:
#
#   1. mutations 503 with {"reason":"degraded"} and Retry-After while the
#      WAL is faulted — solves keep answering 200 from memory;
#   2. /healthz flips to 503 {"state":"degraded","reason":"wal_failed"};
#   3. the self-healing loop brings the store back to healthy on its own
#      once the scripted fault exhausts (no restart, heal counters > 0);
#   4. post-heal mutations are durable: kill -9, restart WITHOUT fault
#      injection, and the version window (fingerprints included) must come
#      back byte-identical.
#
# Health and metrics snapshots land in chaos_status.json for CI artifact
# upload.
set -euo pipefail

ADDR="127.0.0.1:18084"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
DATA="$WORK/data"
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/rrmd" ./cmd/rrmd

python3 - "$WORK/cars.csv" <<'EOF'
import random, sys
random.seed(7)
with open(sys.argv[1], "w") as f:
    for _ in range(300):
        f.write(",".join(f"{random.random():.6f}" for _ in range(4)) + "\n")
EOF

start_daemon() {
  "$WORK/rrmd" -addr "$ADDR" -data-dir "$DATA" -fsync always "$@" &
  PID=$!
  for _ in $(seq 1 100); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "daemon did not come up" >&2
  return 1
}

append_row() {
  # Prints the HTTP status; body goes to $WORK/append_body.json.
  curl -s -o "$WORK/append_body.json" -w '%{http_code}' \
    -X POST "$BASE/v1/datasets/cars/rows" \
    -d '{"rows":[[0.11,0.22,0.33,0.44]]}'
}

echo "== boot with a scripted WAL fault (every wal write fails for 25 ops after warmup) =="
# op=write on wal- also fails the healer's fresh-segment header writes, so
# the store stays visibly degraded until the rule's count exhausts — then
# the next heal attempt succeeds on its own.
start_daemon -load "cars=$WORK/cars.csv" \
  -fault-inject 'op=write,path=wal-,err=enospc,after=6,count=25' \
  -heal-backoff 100ms -heal-backoff-max 400ms

echo "== mutate until the fault trips =="
DEGRADED=""
for i in $(seq 1 20); do
  CODE=$(append_row)
  if [ "$CODE" = "503" ]; then
    DEGRADED=yes
    break
  fi
  [ "$CODE" = "200" ] || { echo "append $i: unexpected HTTP $CODE" >&2; exit 1; }
done
[ -n "$DEGRADED" ] || { echo "fault never tripped: 20 appends all succeeded" >&2; exit 1; }

grep -q '"reason":"degraded"' "$WORK/append_body.json" \
  || { echo "degraded 503 lacks machine-readable reason:" >&2; cat "$WORK/append_body.json" >&2; exit 1; }
RETRY=$(curl -s -o /dev/null -D - -X POST "$BASE/v1/datasets/cars/rows" \
  -d '{"rows":[[0.5,0.5,0.5,0.5]]}' | tr -d '\r' | awk -F': ' 'tolower($1)=="retry-after"{print $2}')
[ -n "$RETRY" ] || { echo "degraded 503 missing Retry-After" >&2; exit 1; }

echo "== degraded: healthz 503, solves still answer =="
HZ_CODE=$(curl -s -o "$WORK/healthz_degraded.json" -w '%{http_code}' "$BASE/healthz")
[ "$HZ_CODE" = "503" ] || { echo "degraded healthz = HTTP $HZ_CODE" >&2; exit 1; }
jq -e '.state == "degraded" and .reason == "wal_failed" and (.ok | not)' \
  "$WORK/healthz_degraded.json" >/dev/null \
  || { echo "degraded healthz body wrong:" >&2; cat "$WORK/healthz_degraded.json" >&2; exit 1; }
curl -sf -X POST "$BASE/v1/solve" -d '{"dataset":"cars","r":5,"algorithm":"hdrrm","max_samples":500}' >/dev/null \
  || { echo "solve failed while store degraded; reads must keep serving" >&2; exit 1; }

echo "== wait for self-heal (no restart) =="
HEALED=""
for _ in $(seq 1 300); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
    HEALED=yes
    break
  fi
  sleep 0.1
done
[ -n "$HEALED" ] || { echo "store never healed" >&2; curl -s "$BASE/healthz" >&2; exit 1; }

curl -sf "$BASE/v1/metrics" | jq -S . > "$WORK/metrics_healed.json"
jq -e '.store.heal_successes >= 1 and .store.state == "healthy"' "$WORK/metrics_healed.json" >/dev/null \
  || { echo "heal counters missing from metrics:" >&2; cat "$WORK/metrics_healed.json" >&2; exit 1; }

echo "== post-heal mutations ack and survive kill -9 =="
CODE=$(append_row)
[ "$CODE" = "200" ] || { echo "post-heal append = HTTP $CODE" >&2; cat "$WORK/append_body.json" >&2; exit 1; }
curl -sf "$BASE/v1/datasets/cars/versions" | jq -S . > "$WORK/versions_before.json"

kill -9 "$PID"
wait "$PID" 2>/dev/null || true

start_daemon -load "cars=$WORK/cars.csv"   # no fault injection this time
curl -sf "$BASE/v1/datasets/cars/versions" | jq -S . > "$WORK/versions_after.json"
diff -u "$WORK/versions_before.json" "$WORK/versions_after.json"

jq -n --slurpfile degraded "$WORK/healthz_degraded.json" \
      --slurpfile healed "$WORK/metrics_healed.json" \
      --slurpfile status <(curl -sf "$BASE/v1/store/status") \
      '{degraded_healthz: $degraded[0], healed_metrics: $healed[0], final_status: $status[0]}' \
  > chaos_status.json

RECOVERED=$(jq -r '.final_status.store.recovery.datasets' chaos_status.json)
if [ "$RECOVERED" != "1" ]; then
  echo "expected 1 recovered dataset, got $RECOVERED" >&2
  cat chaos_status.json >&2
  exit 1
fi

kill "$PID" 2>/dev/null
wait "$PID" 2>/dev/null || true
echo "chaos smoke OK: degraded 503s classified, reads served throughout, self-heal without restart, post-heal acks survived kill -9"
