#!/usr/bin/env bash
# Serving smoke: boot rrmd over two small deterministic datasets, drive it
# with the seeded open-loop load generator — a steady scenario and a burst
# scenario — and require both runs healthy: nonzero completed throughput,
# zero unexpected 5xx responses, and a near-zero error rate. Rejections
# (429/503) are fine; they are the overload design working. The reports are
# written to BENCH_serving_steady.json / BENCH_serving_burst.json for CI
# upload.
set -euo pipefail

ADDR="127.0.0.1:18081"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
STEADY_SECS="${STEADY_SECS:-15}"
BURST_SECS="${BURST_SECS:-10}"
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/rrmd" ./cmd/rrmd
go build -o "$WORK/rrmload" ./cmd/rrmload
go build -o "$WORK/promcheck" ./cmd/promcheck

# Two small deterministic CSV datasets (2 and 5 attributes) so individual
# solves stay cheap: the smoke measures the serving path under load, not
# one giant solve. The demo datasets (-demo) are far heavier and belong in
# manual benchmarking, not a CI gate.
python3 - "$WORK/pair.csv" "$WORK/cars.csv" <<'EOF'
import random, sys
random.seed(11)
with open(sys.argv[1], "w") as f:
    for _ in range(1200):
        f.write(",".join(f"{random.random():.6f}" for _ in range(2)) + "\n")
with open(sys.argv[2], "w") as f:
    for _ in range(800):
        f.write(",".join(f"{random.random():.6f}" for _ in range(5)) + "\n")
EOF

# Explicit pool shape so the smoke behaves the same on any runner: a small
# worker pool, a bounded queue, and a short queue-wait budget so overload
# sheds promptly with 429s instead of letting requests rot. The observability
# surface runs in anger: JSON logs, a deliberately unmeetable solve SLO plus
# a hair-trigger slow-request threshold so the burst scenario trips the
# fast-burn alarm and the flight recorder captures bundles we can assert on.
"$WORK/rrmd" -addr "$ADDR" -policy affinity -workers 4 -queue 64 \
  -queue-wait 2s -load "pair=$WORK/pair.csv" -load "cars=$WORK/cars.csv" \
  -log-format json -slo "solve:p99<1ms@99" -trace-slow 250ms \
  -incident-dir "$WORK/incidents" 2> "$WORK/rrmd.log" &
PID=$!
for _ in $(seq 1 100); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null

# max_samples bounds the per-solve cost so the smoke measures the serving
# path on any runner; rates are sized for small CI machines.
echo "== steady scenario =="
"$WORK/rrmload" -url "$BASE" -scenario steady -seed 7 \
  -rate 15 -duration "${STEADY_SECS}s" -timeout 15s -max-samples 400 \
  -save-trace "$WORK/trace_steady.json" -out BENCH_serving_steady.json

# Scrape the Prometheus surface mid-run (the daemon has just served a full
# steady scenario, so the histograms are populated) and validate it with the
# strict exposition parser. The scrape is kept as a CI artifact either way.
echo "== /metrics scrape =="
curl -sf "$BASE/metrics" -o BENCH_metrics_scrape.txt
# rrmd_slo and rrmd_go_ are prefix entries: each requires its whole family
# group (the SLO gauges and the Go runtime collector) to be present.
"$WORK/promcheck" -require \
  rrmd_solve_duration_seconds,rrmd_solve_stage_duration_seconds,rrmd_queue_wait_seconds,rrmd_run_duration_seconds,rrmd_cache_hits_total,rrmd_vecset_builds_total,rrmd_wal_fsync_seconds,rrmd_snapshot_cut_seconds,rrmd_slo,rrmd_go_ \
  BENCH_metrics_scrape.txt
SOLVES=$(grep -c '^rrmd_solve_duration_seconds_bucket' BENCH_metrics_scrape.txt || true)
if [ "$SOLVES" -eq 0 ]; then
  echo "scrape has no solve-latency buckets" >&2
  exit 1
fi

echo "== burst scenario =="
"$WORK/rrmload" -url "$BASE" -scenario burst -seed 7 \
  -rate 8 -burst-rate 120 -burst-period 3s -burst-len 1s \
  -duration "${BURST_SECS}s" -timeout 15s -max-samples 400 \
  -out BENCH_serving_burst.json

# The burst ran against an unmeetable 1ms solve objective and a 250ms
# slow-request threshold, so the flight recorder must hold at least one
# incident. The newest bundle is kept as a CI artifact and must carry its
# post-mortem payloads (goroutine profile, metrics snapshot with the SLO
# gauges). Anomaly log records under load must carry request correlation.
echo "== slo + incident capture =="
curl -sf "$BASE/v1/slo" | jq -r \
  '.objectives[] | "\(.name): compliance=\(.compliance) burn_fast=\(.burn_rate_fast) alarm=\(.fast_burn_alarm)"'
INC_ID=$(curl -sf "$BASE/v1/incidents" | jq -r '.incidents[0].id // empty')
if [ -z "$INC_ID" ]; then
  echo "no incident captured under burst (expected slow_request captures at -trace-slow 250ms)" >&2
  exit 1
fi
curl -sf "$BASE/v1/incidents/$INC_ID" -o BENCH_incident_bundle.json
jq -e '.goroutines | contains("goroutine profile:")' BENCH_incident_bundle.json >/dev/null
jq -e '.metrics | contains("rrmd_slo_")' BENCH_incident_bundle.json >/dev/null
echo "incident $INC_ID: trigger=$(jq -r .trigger BENCH_incident_bundle.json)" \
  "request_id=$(jq -r '.request_id // "-"' BENCH_incident_bundle.json)"
if grep -q '"msg":"rrmd: slow request"' "$WORK/rrmd.log"; then
  if grep '"msg":"rrmd: slow request"' "$WORK/rrmd.log" | grep -qv '"request_id":"'; then
    echo "slow-request log records missing request_id:" >&2
    grep '"msg":"rrmd: slow request"' "$WORK/rrmd.log" | grep -v '"request_id":"' | head >&2
    exit 1
  fi
fi

echo "== assertions =="
for f in BENCH_serving_steady.json BENCH_serving_burst.json; do
  OK=$(jq -r '.ok' "$f")
  RPS=$(jq -r '.throughput_rps' "$f")
  BAD=$(jq -r '.unexpected_5xx' "$f")
  ERRPCT=$(jq -r '.error_rate * 100 | floor' "$f")
  echo "$f: ok=$OK throughput=${RPS}req/s unexpected_5xx=$BAD error_rate=${ERRPCT}%"
  if [ "$OK" -le 0 ]; then
    echo "$f: no requests completed" >&2
    exit 1
  fi
  if [ "$BAD" != "0" ]; then
    echo "$f: $BAD unexpected 5xx responses" >&2
    exit 1
  fi
  # Deliberate sheds report as rejections, not errors; anything above a few
  # percent of real errors (timeouts, 4xx) means the serving path is sick.
  if [ "$ERRPCT" -ge 5 ]; then
    echo "$f: error rate ${ERRPCT}% >= 5%" >&2
    jq '.per_kind' "$f" >&2
    exit 1
  fi
done

# The daemon must still be healthy after the storm, and the JSON and
# Prometheus surfaces must agree on the one registry behind them: quiesced,
# the scheduler's done counter reads the same on both.
curl -sf "$BASE/healthz" >/dev/null
curl -sf "$BASE/v1/metrics" | jq -S '{scheduler, engine}'
JSON_DONE=$(curl -sf "$BASE/v1/metrics" | jq -r '.scheduler.done')
PROM_DONE=$(curl -sf "$BASE/metrics" | awk '$1 == "rrmd_jobs_done_total" {print $2}')
if [ "$JSON_DONE" != "$PROM_DONE" ]; then
  echo "metrics surfaces disagree: /v1/metrics done=$JSON_DONE, /metrics done=$PROM_DONE" >&2
  exit 1
fi

kill "$PID" 2>/dev/null
wait "$PID" 2>/dev/null || true
echo "serving smoke OK: steady + burst healthy, reports written"
