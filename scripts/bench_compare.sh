#!/usr/bin/env bash
# Bench compare: diff a fresh engine benchmark against the committed baseline
# so the perf trajectory is visible per commit. Cases are keyed by
# dataset+algorithm; cold_ms and vecset_reuse_ms are compared, and a >20%
# regression prints a loud warning — it does NOT fail the build, because CI
# runner noise on shared machines routinely exceeds that for sub-10ms cases.
# Humans (and the PR timeline) read the warnings; a real regression shows up
# consistently, noise does not.
#
#   scripts/bench_compare.sh BENCH_engine_procs1.json [baseline.json]
#
# Exit status is 0 unless the inputs are unreadable or schema-incompatible.
set -euo pipefail

FRESH="${1:?usage: bench_compare.sh fresh.json [baseline.json]}"
BASELINE="${2:-BENCH_engine.json}"
THRESH_PCT="${THRESH_PCT:-20}"

for f in "$FRESH" "$BASELINE"; do
  if ! jq -e '.cases | length > 0' "$f" >/dev/null; then
    echo "bench_compare: $f has no benchmark cases" >&2
    exit 1
  fi
done

echo "bench compare: $FRESH vs baseline $BASELINE (warn at >${THRESH_PCT}%)"

WARNINGS=0
# One line per (case, metric) present in both files: "key metric base fresh".
while read -r key metric base fresh; do
  # Percent delta, computed in awk to keep the script bc-free.
  pct=$(awk -v b="$base" -v f="$fresh" 'BEGIN {
    if (b <= 0) { print "0"; exit }
    printf "%.1f", (f - b) / b * 100
  }')
  flag=""
  if awk -v p="$pct" -v t="$THRESH_PCT" 'BEGIN { exit !(p > t) }'; then
    flag="   <-- WARNING: >${THRESH_PCT}% regression"
    WARNINGS=$((WARNINGS + 1))
  fi
  printf '  %-28s %-16s %10.3fms -> %10.3fms  %+6s%%%s\n' \
    "$key" "$metric" "$base" "$fresh" "$pct" "$flag"
done < <(jq -rn --slurpfile base "$BASELINE" --slurpfile fresh "$FRESH" '
  def cases(x): x[0].cases | map({key: (.dataset + "/" + .algorithm), value: .}) | from_entries;
  cases($base) as $b | cases($fresh) as $f |
  ($b | keys[]) as $k | select($f[$k] != null) |
  (["cold_ms", "vecset_reuse_ms"][]) as $m |
  select(($b[$k][$m] != null) and ($f[$k][$m] != null)) |
  "\($k) \($m) \($b[$k][$m]) \($f[$k][$m])"
')

if [ "$WARNINGS" -gt 0 ]; then
  echo "bench_compare: $WARNINGS metric(s) regressed >${THRESH_PCT}% vs baseline (warning only, not failing the build)"
else
  echo "bench_compare: no regression beyond ${THRESH_PCT}%"
fi
