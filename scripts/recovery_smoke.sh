#!/usr/bin/env bash
# Recovery smoke: start rrmd with a data dir, mutate over HTTP, kill -9 the
# daemon, restart it over the same directory, and require the registered
# datasets, their retained version windows (fingerprints included), and a
# deterministic solve to come back byte-identical. Store status is written
# to store_status.json for upload as a CI artifact.
set -euo pipefail

ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
DATA="$WORK/data"
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/rrmd" ./cmd/rrmd

# A small deterministic CSV dataset (5 attributes).
python3 - "$WORK/cars.csv" <<'EOF'
import random, sys
random.seed(11)
with open(sys.argv[1], "w") as f:
    for _ in range(500):
        f.write(",".join(f"{random.random():.6f}" for _ in range(5)) + "\n")
EOF

start_daemon() {
  "$WORK/rrmd" -addr "$ADDR" -data-dir "$DATA" -fsync always "$@" &
  PID=$!
  for _ in $(seq 1 100); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "daemon did not come up" >&2
  return 1
}

echo "== first boot: register + mutate =="
start_daemon -load "cars=$WORK/cars.csv"
curl -sf -X POST "$BASE/v1/datasets/cars/rows" \
  -d '{"rows":[[0.10,0.90,0.50,0.40,0.30],[0.20,0.80,0.60,0.30,0.70]]}' >/dev/null
curl -sf -X POST "$BASE/v1/datasets/cars/rows" \
  -d '{"rows":[[0.90,0.10,0.20,0.80,0.40]]}' >/dev/null
curl -sf -X DELETE "$BASE/v1/datasets/cars/rows" -d '{"ids":[3,17]}' >/dev/null

# Capture the observable state: version window (with fingerprints) and a
# deterministic solve.
curl -sf "$BASE/v1/datasets/cars/versions" | jq -S . > "$WORK/versions_before.json"
curl -sf -X POST "$BASE/v1/solve" -d '{"dataset":"cars","r":7,"algorithm":"hdrrm","max_samples":800}' \
  | jq -S '{dataset,algorithm,ids,rank_regret}' > "$WORK/solve_before.json"

echo "== kill -9 =="
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

echo "== restart over the same data dir (same flags: -load must not clobber recovery) =="
start_daemon -load "cars=$WORK/cars.csv"
curl -sf "$BASE/v1/datasets/cars/versions" | jq -S . > "$WORK/versions_after.json"
curl -sf -X POST "$BASE/v1/solve" -d '{"dataset":"cars","r":7,"algorithm":"hdrrm","max_samples":800}' \
  | jq -S '{dataset,algorithm,ids,rank_regret}' > "$WORK/solve_after.json"
curl -sf "$BASE/v1/store/status" | jq -S . > store_status.json

echo "== compare =="
diff -u "$WORK/versions_before.json" "$WORK/versions_after.json"
diff -u "$WORK/solve_before.json" "$WORK/solve_after.json"

# The restart must have recovered from disk, not started empty.
RECOVERED=$(jq -r '.store.recovery.datasets' store_status.json)
if [ "$RECOVERED" != "1" ]; then
  echo "expected 1 recovered dataset, got $RECOVERED" >&2
  cat store_status.json >&2
  exit 1
fi

kill "$PID" 2>/dev/null
wait "$PID" 2>/dev/null || true
echo "recovery smoke OK: versions and solve results byte-identical across kill -9"
cat store_status.json
